"""Campaign-scale fuzzing with per-operator precision telemetry.

The plain driver (:mod:`repro.fuzz.driver`) answers *is the verifier
sound?*  This layer answers the paper's second question — *is it
precise?* — at whole-program scale.  A precision campaign runs in
rounds; every program is fuzzed through a telemetry-carrying oracle that
attributes three imprecision signals to the transfer function that
caused them (via the verifier's ``on_transfer`` hook and the
interpreter's ``on_step`` replay observations):

* **rejected-but-clean** events, attributed to the operator at the
  rejecting instruction;
* **γ-size histograms** — the abstract width of every scalar result an
  operator produced;
* **tightness deltas** — abstract-range bits minus the concrete-range
  bits actually observed across replays, the per-operator analogue of
  the paper's Figure-4 set-size ratios.

Between rounds the campaign feeds its own findings back in: shrunk
rejected-but-clean programs and large-tightness near-misses become
*mutation seeds* (:mod:`repro.fuzz.mutate`), so later rounds concentrate
on the imprecision frontier earlier rounds discovered.

Determinism and resumability
----------------------------
Program ``index`` fuzzes a stream derived from ``(campaign_seed,
index)`` only; worker shards are merged in index order; every telemetry
counter is an integer.  The merged :class:`PrecisionReport` therefore
serializes byte-identically for 1, 2, or N workers.  With a
``state_dir`` the campaign checkpoints after every round (spec, pool,
stats, report, corpus) and a rerun resumes where it stopped.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro import obs as _obs
from repro.bpf.canon import VerdictCache
from repro.bpf.insn import Instruction
from repro.bpf.program import Program
from repro.bpf.verifier.compiled import step_label
from repro.eval.precision import OperatorStats, PrecisionReport, gamma_bits

from .corpus import Corpus
from .driver import program_seed, shrink_violation
from .generator import PROFILES, generate_program
from .mutate import mutate_program
from .oracle import DifferentialOracle
from .resilience import (
    QuarantinedBatch,
    RetryPolicy,
    batch_indices,
    run_leased_batches,
)
from .shrink import shrink_program

__all__ = [
    "CampaignSpec",
    "CampaignStateError",
    "PrecisionCampaignStats",
    "PrecisionCampaignResult",
    "TransferCollector",
    "merge_round_results",
    "run_precision_campaign",
]


class CampaignStateError(ValueError):
    """A --state directory cannot be resumed (wrong format or spec)."""

U64 = (1 << 64) - 1

#: Decorrelates the mutation-decision RNG from the generator stream.
_MUTATE_MIX = 0xD1B5_4A32_D192_ED03

_STATE_FORMAT_VERSION = 1
_STATE_FILE = "state.json"
_CORPUS_FILE = "corpus.json"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a precision campaign's outcome."""

    budget: int = 400               # programs across all rounds
    rounds: int = 2
    seed: int = 0
    workers: int = 1
    profile: str = "mixed"
    max_insns: int = 32
    ctx_size: int = 64
    inputs_per_program: int = 8
    #: probability a post-round-0 program mutates a pool seed instead of
    #: being generated fresh
    mutate_fraction: float = 0.5
    pool_limit: int = 64            # mutation seeds kept (newest win)
    seeds_per_round: int = 8        # pool admissions per round
    seed_shrink_per_round: int = 4  # rejected-clean seeds shrunk per round
    #: tightness delta (bits) an accepted program must show to enter the
    #: pool as a near-miss seed
    tightness_seed_threshold: int = 16
    shrink: bool = True             # minimize soundness violations
    #: replay step budget — mutants can contain (verifier-rejected)
    #: loops, so replays must be bounded
    step_limit: int = 4096

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise KeyError(
                f"unknown profile {self.profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if not 0.0 <= self.mutate_fraction <= 1.0:
            raise ValueError("mutate_fraction must be within [0, 1]")


@dataclass
class PrecisionCampaignStats:
    """Aggregate campaign counters (timing included, so not diffable —
    determinism lives in the :class:`PrecisionReport`)."""

    budget: int = 0
    executed: int = 0
    accepted: int = 0
    rejected: int = 0
    rejected_clean: int = 0
    violations: int = 0
    containment_checks: int = 0
    mutants: int = 0
    seeds_pooled: int = 0
    rounds_completed: int = 0
    elapsed_seconds: float = 0.0
    # Crash-recovery counters (defaults keep pre-resilience checkpoints
    # loadable): lease retries spent and batches lost to quarantine.
    retries: int = 0
    quarantined: int = 0

    @property
    def programs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    def summary(self) -> str:
        lines = [
            f"programs  : {self.executed}/{self.budget} "
            f"({self.rounds_completed} rounds, {self.mutants} mutants)",
            f"accepted  : {self.accepted}",
            f"rejected  : {self.rejected} "
            f"(clean replay: {self.rejected_clean})",
            f"checks    : {self.containment_checks} register containments",
            f"seed pool : {self.seeds_pooled} mutation seeds admitted",
            f"violations: {self.violations}",
        ]
        if self.retries or self.quarantined:
            # Only under chaos/real faults — the fault-free summary is
            # byte-stable for goldens.
            lines.append(
                f"resilience: {self.retries} batch retries, "
                f"{self.quarantined} quarantined"
            )
        lines += [
            f"throughput: {self.programs_per_second:.1f} programs/sec "
            f"({self.elapsed_seconds:.2f}s)",
        ]
        return "\n".join(lines)


@dataclass
class PrecisionCampaignResult:
    """Stats, corpus, merged telemetry, and the final mutation pool."""

    stats: PrecisionCampaignStats
    corpus: Corpus
    report: PrecisionReport
    pool: List[str] = field(default_factory=list)   # bytecode hex
    #: poison-batch payloads (see :class:`QuarantinedBatch.to_payload`,
    #: plus ``round`` and regenerated programs) — also written under
    #: ``<state_dir>/poison/`` when the campaign has a state directory.
    quarantined: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.stats.violations == 0 and not self.quarantined


class TransferCollector:
    """Gathers per-operator telemetry during one program's verification.

    ``ops`` accumulates the γ-size histogram per operator label; ``at``
    remembers, per instruction index, the label and abstract interval of
    the scalar result produced there, for the tightness comparison
    against the concrete ranges the replay observes.
    """

    def __init__(self) -> None:
        self.ops: Dict[str, Dict] = {}
        self.at: Dict[int, Tuple[str, int, int]] = {}

    def record(self, idx: int, label: str, scalar) -> None:
        bits = gamma_bits(scalar)
        entry = self.ops.setdefault(
            label, {"occurrences": 0, "gamma_hist": {}}
        )
        entry["occurrences"] += 1
        hist = entry["gamma_hist"]
        hist[bits] = hist.get(bits, 0) + 1
        if scalar.is_bottom() or label.startswith("refine_"):
            return
        prev = self.at.get(idx)
        if prev is None:
            self.at[idx] = (label, scalar.umin(), scalar.umax())
        else:
            self.at[idx] = (
                label,
                min(prev[1], scalar.umin()),
                max(prev[2], scalar.umax()),
            )


def _attribution_label(insn: Instruction) -> str:
    """Operator label a rejection at ``insn`` is charged to.

    Shared with the obs layer's per-operator timing
    (:func:`repro.bpf.verifier.compiled.step_label`), so precision and
    cost attribution rank over the same label space.
    """
    return step_label(insn)


#: Worker-side per-operator record: :class:`TransferCollector` fields
#: (``occurrences``, ``gamma_hist``) plus these counters, named exactly
#: like the :class:`OperatorStats` fields they merge into.
_ZERO_OP_COUNTERS = {
    "tightness_sum": 0, "tightness_count": 0, "tightness_max": 0,
    "rejections": 0, "rejected_clean": 0,
}

#: Per-round worker state — the campaign spec and the mutation-seed
#: pool — installed once per worker (fork/spawn initializer or inline)
#: instead of pickled per work item.
_worker_spec: Optional[CampaignSpec] = None
_worker_pool: Tuple[str, ...] = ()
#: Pool programs decoded lazily, at most once per worker per round: many
#: work items mutate the same base seed, and a decoded ``Program``
#: carries its cached compiled (concrete and abstract) forms with it.
_worker_pool_programs: Dict[int, Program] = {}
#: Per-worker verdict cache.  Inline (workers == 1) it *is* the parent's
#: cache; under multiprocessing each worker gets a private copy seeded
#: from the parent's round-start snapshot and ships newly recorded
#: entries back per item (``_worker_cache_shared`` distinguishes the two).
_worker_cache: Optional[VerdictCache] = None
_worker_cache_shared: bool = False


def _set_worker_state(
    spec: CampaignSpec,
    pool: Tuple[str, ...],
    obs_state: "Optional[Tuple[bool, int]]" = None,
    cache: "Optional[VerdictCache | Dict]" = None,
) -> None:
    global _worker_spec, _worker_pool, _worker_pool_programs
    global _worker_cache, _worker_cache_shared
    _worker_spec = spec
    _worker_pool = pool
    _worker_pool_programs = {}
    # A live VerdictCache means the caller shares its object (inline
    # path); a dict is a pickled snapshot for a forked/spawned worker,
    # whose additions travel back as per-item shards (see _fuzz_one).
    if cache is None:
        _worker_cache = None
        _worker_cache_shared = False
    elif isinstance(cache, VerdictCache):
        _worker_cache = cache
        _worker_cache_shared = True
    else:
        # from_payload loads without journaling, so bootstrap entries
        # are never re-shipped as "new".
        _worker_cache = VerdictCache.from_payload(cache)
        _worker_cache_shared = False
    # Workers inherit the parent's obs switch (compiled closures must
    # instrument consistently) but no sinks — metrics return with each
    # result via the scoped registry.
    if obs_state is not None:
        _obs.init_worker(obs_state)


def _pool_program(index: int) -> Program:
    program = _worker_pool_programs.get(index)
    if program is None:
        program = _worker_pool_programs[index] = Program.from_bytes(
            bytes.fromhex(_worker_pool[index])
        )
    return program


def _telemetry_oracle(
    spec: CampaignSpec,
    collector: TransferCollector,
    verdict_cache: Optional[VerdictCache] = None,
):
    # ``verdict_cache`` is explicit (not read from the worker global):
    # the shrink predicates below reuse this constructor parent-side and
    # must stay uncached, or the inline path would record cache entries
    # the multiprocessing path never sees.
    return DifferentialOracle(
        ctx_size=spec.ctx_size,
        inputs_per_program=spec.inputs_per_program,
        on_transfer=collector.record,
        collect_ranges=True,
        step_limit=spec.step_limit,
        verdict_cache=verdict_cache,
    )


def _iter_tightness(collector: TransferCollector, report):
    """Yield ``(label, delta)`` tightness observations for one program."""
    for idx, span in sorted(report.concrete_ranges.items()):
        at = collector.at.get(idx)
        if at is None:
            continue  # pointer result or untracked op
        label, umin, umax = at
        abstract_bits = (umax - umin).bit_length()
        observed_bits = (span[1] - span[0]).bit_length()
        yield label, max(0, abstract_bits - observed_bits)


def _program_for_index(
    spec: CampaignSpec,
    pool: Tuple[str, ...],
    index: int,
    get_pool_program=None,
) -> Tuple[int, str, Program]:
    """Regenerate the exact program campaign ``index`` fuzzes.

    Pure function of ``(spec, pool, index)`` — shared by the worker-side
    fuzz path and the parent-side poison-batch writer, so a quarantined
    batch's artifact names precisely the programs the round lost.
    """
    if get_pool_program is None:
        get_pool_program = lambda i: Program.from_bytes(  # noqa: E731
            bytes.fromhex(pool[i])
        )
    seed = program_seed(spec.seed, index)
    generated = generate_program(
        seed, spec.profile, spec.max_insns, spec.ctx_size
    )
    program = generated.program
    origin = "fresh"
    mut_rng = random.Random(seed ^ _MUTATE_MIX)
    if pool and mut_rng.random() < spec.mutate_fraction:
        base = get_pool_program(mut_rng.randrange(len(pool)))
        program = mutate_program(
            base, donor=generated.program, rng=mut_rng,
            max_insns=spec.max_insns,
        )
        origin = "mutant"
    return seed, origin, program


def _fuzz_one(index: int) -> Dict:
    """Fuzz one campaign index with telemetry; JSON-friendly result.

    Top-level so it pickles across the process boundary; the spec and
    mutation pool arrive via :func:`_set_worker_state`.
    """
    if _obs.enabled():
        # Merge-on-return: oracle counters and per-op verifier timings
        # recorded by this item ship back with the result, leaving the
        # deterministic telemetry payload untouched.
        with _obs.scoped_registry() as registry:
            out = _fuzz_one_inner(index)
        out["obs"] = registry.to_dict()
    else:
        out = _fuzz_one_inner(index)
    if _worker_cache is not None and not _worker_cache_shared:
        # Same merge-on-return shape as obs: newly recorded verdicts ride
        # home with the item and the parent absorbs them in index order.
        shard = _worker_cache.drain_new()
        if _faults.enabled() and _faults.fire(
            "campaign.shard.corrupt", (index,)
        ):
            # Chaos: ship garbage instead.  The parent's absorb loop must
            # reject it without poisoning the merged cache — and the
            # PrecisionReport never depends on the cache either way.
            shard = _faults.corrupt_payload(shard)
        out["verdict_cache"] = shard
    return out


def _fuzz_batch(
    indices: "Sequence[int]", attempt: int, inject: bool
) -> List[Dict]:
    """Lease-runner batch task: fuzz each index, with crash injection.

    The crash key includes the attempt number, so an injected crash does
    not deterministically recur on retry; ``inject`` is False on the
    final attempt (:class:`RetryPolicy.fault_free_final_attempt`), which
    bounds injected chaos without masking real faults.
    """
    out: List[Dict] = []
    for index in indices:
        if inject and _faults.enabled():
            _faults.crash_point("campaign.worker.crash", (index, attempt))
        out.append(_fuzz_one(index))
    return out


def _fuzz_one_inner(index: int) -> Dict:
    spec = _worker_spec
    assert spec is not None, "worker spec not installed"
    pool = _worker_pool
    seed, origin, program = _program_for_index(
        spec, pool, index, get_pool_program=_pool_program
    )

    collector = TransferCollector()
    oracle = _telemetry_oracle(spec, collector, verdict_cache=_worker_cache)
    report = oracle.check_program(program, input_seed_base=seed)

    ops = collector.ops
    for entry in ops.values():
        entry.update(_ZERO_OP_COUNTERS)

    near_miss = False
    for label, delta in _iter_tightness(collector, report):
        entry = ops[label]
        entry["tightness_sum"] += delta
        entry["tightness_count"] += 1
        entry["tightness_max"] = max(entry["tightness_max"], delta)
        if delta >= spec.tightness_seed_threshold:
            near_miss = True

    reject_label: Optional[str] = None
    if report.verdict == "rejected":
        # reject_pc is None for whole-program CFG rejections (mutants
        # with loops or dead code) — a policy rejection the oracle
        # already refuses to count as a clean false positive.
        reject_label = (
            _attribution_label(program.insns[report.reject_pc])
            if report.reject_pc is not None
            else "cfg"
        )
        entry = ops.setdefault(
            reject_label, {"occurrences": 0, "gamma_hist": {},
                           **_ZERO_OP_COUNTERS}
        )
        entry["rejections"] += 1
        if report.rejected_but_clean:
            entry["rejected_clean"] += 1

    out: Dict = {
        "index": index,
        "seed": seed,
        "origin": origin,
        "verdict": report.verdict,
        "checks": report.checks,
        "rejected_but_clean": bool(report.rejected_but_clean),
        "reject_label": reject_label,
        # A violating program is a soundness witness, not an imprecision
        # one — it must not enter the mutation pool as a near-miss.
        "near_miss": (
            near_miss
            and report.verdict == "accepted"
            and not report.violations
        ),
        "violations": [asdict(v) for v in report.violations],
        "ops": ops,
    }
    if report.violations or out["rejected_but_clean"] or out["near_miss"]:
        out["bytecode_hex"] = program.to_bytes().hex()
    return out


def _merge_result(report: PrecisionReport, res: Dict) -> None:
    """Fold one worker result into the report (index order = stable)."""
    report.programs += 1
    if res["verdict"] == "accepted":
        report.accepted += 1
    else:
        report.rejected += 1
        if res["rejected_but_clean"]:
            report.rejected_clean += 1
    if res["origin"] == "mutant":
        report.mutants += 1
    report.violations += len(res["violations"])
    for label, entry in sorted(res["ops"].items()):
        report.operator(label).merge(OperatorStats(
            op=label,
            occurrences=entry["occurrences"],
            gamma_hist={int(b): n for b, n in entry["gamma_hist"].items()},
            **{key: entry[key] for key in _ZERO_OP_COUNTERS},
        ))


def _still_rejected_clean(
    spec: CampaignSpec, program: Program, input_seed_base: int
) -> bool:
    oracle = DifferentialOracle(
        ctx_size=spec.ctx_size,
        inputs_per_program=spec.inputs_per_program,
        step_limit=spec.step_limit,
    )
    rep = oracle.check_program(program, input_seed_base=input_seed_base)
    # reject_pc is None for structural (CFG) rejections — shrinking must
    # not drift an imprecision witness into a dead-code witness.
    return (
        rep.verdict == "rejected"
        and bool(rep.rejected_but_clean)
        and rep.reject_pc is not None
    )


def _still_near_miss(
    spec: CampaignSpec, program: Program, input_seed_base: int
) -> bool:
    collector = TransferCollector()
    oracle = _telemetry_oracle(spec, collector)
    rep = oracle.check_program(program, input_seed_base=input_seed_base)
    if rep.verdict != "accepted" or rep.violations:
        return False
    return any(
        delta >= spec.tightness_seed_threshold
        for _, delta in _iter_tightness(collector, rep)
    )


def _shrink_seed(
    spec: CampaignSpec, program: Program, input_seed_base: int, kind: str
) -> Program:
    """Minimize a mutation-seed candidate while it keeps its property:
    still rejected-but-clean, or still showing a near-miss tightness
    delta."""
    predicate = (
        _still_rejected_clean if kind == "rejected-clean"
        else _still_near_miss
    )
    shrunk, _ = shrink_program(
        program,
        lambda p: predicate(spec, p, input_seed_base),
        max_candidates=150,
    )
    return shrunk


def _round_budgets(spec: CampaignSpec) -> List[int]:
    per, extra = divmod(spec.budget, spec.rounds)
    return [per + (1 if r < extra else 0) for r in range(spec.rounds)]


# -- state persistence ----------------------------------------------------------


def _save_state(
    state_dir: Path,
    spec: CampaignSpec,
    stats: PrecisionCampaignStats,
    report: PrecisionReport,
    pool: List[str],
    corpus: Corpus,
) -> None:
    state_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": _STATE_FORMAT_VERSION,
        "spec": asdict(spec),
        "stats": asdict(stats),
        # Wall-clock/throughput at checkpoint time, so `ls`-ing a long
        # campaign's state dir answers "how fast is it going" without
        # replaying anything.  Deliberately *outside* the report: the
        # PrecisionReport stays byte-identical across machines/timing.
        "elapsed_s": round(stats.elapsed_seconds, 3),
        "programs_per_s": round(stats.programs_per_second, 1),
        "report": report.to_dict(),
        "pool": pool,
    }
    # Write-then-rename so an interrupted checkpoint never corrupts the
    # files a resume depends on.
    _atomic_write(
        state_dir / _STATE_FILE,
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
    _atomic_write(state_dir / _CORPUS_FILE, corpus.to_json() + "\n")


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    if _faults.enabled() and _faults.fire("campaign.checkpoint.torn"):
        # Chaos: die after the temp write, before the rename — the
        # window a non-atomic writer would corrupt.  The previous
        # complete checkpoint must survive untouched.
        tmp.write_text(text[: len(text) // 2])
        return
    tmp.write_text(text)
    os.replace(tmp, path)


def _record_quarantine(
    state_path: Optional[Path],
    rnd: int,
    spec: CampaignSpec,
    round_pool: Tuple[str, ...],
    quarantined: List[QuarantinedBatch],
) -> List[Dict]:
    """Materialize poison batches: payloads, plus artifacts on disk.

    Each quarantined batch becomes one JSON file under
    ``<state_dir>/poison/`` carrying the failure fingerprints *and* the
    regenerated programs the round lost — everything needed to replay
    the batch in isolation (the fuzz stream is a pure function of
    ``(spec, pool, index)``).
    """
    payloads: List[Dict] = []
    if not quarantined:
        return payloads
    pool_programs: Dict[int, Program] = {}

    def get_pool_program(i: int) -> Program:
        program = pool_programs.get(i)
        if program is None:
            program = pool_programs[i] = Program.from_bytes(
                bytes.fromhex(round_pool[i])
            )
        return program

    for batch in quarantined:
        programs = []
        for index in batch.indices:
            seed, origin, program = _program_for_index(
                spec, round_pool, index, get_pool_program=get_pool_program
            )
            programs.append({
                "index": index,
                "seed": seed,
                "origin": origin,
                "bytecode_hex": program.to_bytes().hex(),
            })
        payload = dict(batch.to_payload())
        payload["round"] = rnd
        payload["programs"] = programs
        payload["fault_plan"] = _faults.worker_init_state()
        payloads.append(payload)
        if state_path is not None:
            poison_dir = state_path / "poison"
            poison_dir.mkdir(parents=True, exist_ok=True)
            # The attempt-count suffix (plus a collision bump) keeps a
            # resume that re-quarantines the same batch from silently
            # overwriting the earlier artifact — each quarantine event
            # leaves its own file.
            stem = (
                f"round-{rnd:03d}-batch-{batch.batch_id:03d}"
                f"-a{batch.attempts:02d}"
            )
            path = poison_dir / f"{stem}.json"
            bump = 1
            while path.exists():
                bump += 1
                path = poison_dir / f"{stem}.{bump}.json"
            _atomic_write(
                path,
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
    return payloads


def _load_state(
    state_dir: Path, spec: CampaignSpec
) -> Optional[Tuple[PrecisionCampaignStats, PrecisionReport, List[str], Corpus]]:
    path = state_dir / _STATE_FILE
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
        if payload.get("format_version") != _STATE_FORMAT_VERSION:
            raise CampaignStateError(
                f"unsupported campaign state format "
                f"{payload.get('format_version')!r}"
            )
        # ``workers`` is outcome-neutral (reports are byte-identical for
        # any worker count), so resuming on different cores is fine.
        saved_spec = dict(payload["spec"], workers=spec.workers)
        if saved_spec != asdict(spec):
            raise CampaignStateError(
                "campaign state was produced by a different spec; "
                "use a fresh --state directory or matching options"
            )
        stats = PrecisionCampaignStats(**payload["stats"])
        report = PrecisionReport.from_dict(payload["report"])
        corpus_path = state_dir / _CORPUS_FILE
        corpus = (
            Corpus.load(corpus_path) if corpus_path.exists() else Corpus()
        )
        return stats, report, list(payload["pool"]), corpus
    except CampaignStateError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise CampaignStateError(
            f"corrupt campaign state in {state_dir}: {exc}"
        )


def merge_round_results(
    spec: CampaignSpec,
    stats: PrecisionCampaignStats,
    report: PrecisionReport,
    pool: List[str],
    corpus: Corpus,
    results: List[Dict],
    verdict_cache: Optional[VerdictCache] = None,
) -> None:
    """Fold one completed round's results into the campaign state.

    This is the campaign's determinism core, shared verbatim by the
    single-machine loop and the distributed coordinator
    (:mod:`repro.fuzz.dist`): results sort on their campaign index, the
    report merges in that order, and mutation-seed admission follows
    index order too — so the merged :class:`PrecisionReport` and the
    next round's pool are byte-identical for any worker count, transport
    (in-process pipes or HTTP), or kill schedule.  Results may have
    round-tripped through JSON (the dist wire format and the campaign
    checkpoint both do): every field this reads is JSON-stable.
    """
    results.sort(key=lambda r: r["index"])
    if _obs.enabled():
        registry = _obs.default_registry()
        for res in results:
            shard = res.pop("obs", None)
            if shard is not None:
                registry.merge_dict(shard)
    if verdict_cache is not None:
        # Absorb worker verdict shards in index order (keep-first on
        # duplicates), so the resulting entry set is identical for
        # any worker count.  Inline rounds mutate the cache directly
        # and ship no shards.  A shard that fails to decode — a torn
        # pipe payload, an injected campaign.shard.corrupt — is
        # dropped whole (absorb is all-or-nothing): the cache is an
        # accelerator, never report-bearing, so losing a shard costs
        # re-verification, not correctness.
        for res in results:
            shard = res.pop("verdict_cache", None)
            if shard is None:
                continue
            try:
                verdict_cache.absorb(shard)
            except (ValueError, KeyError, TypeError, IndexError):
                if _obs.enabled():
                    _obs.default_registry().counter(
                        "campaign.shard_rejected"
                    ).inc()

    for res in results:
        stats.containment_checks += res["checks"]
        _merge_result(report, res)
        if res["violations"]:
            program = Program.from_bytes(bytes.fromhex(res["bytecode_hex"]))
            shrunk = (
                shrink_violation(spec, res["bytecode_hex"], res["seed"])
                if spec.shrink
                else None
            )
            corpus.add_violation(
                program,
                seed=res["seed"],
                profile=spec.profile,
                violation=res["violations"][0],
                shrunk=shrunk,
                note=f"index {res['index']} ({res['origin']})",
            )

    # Mutation-seed admission: shrunk rejected-but-clean programs
    # first, then shrunk near-miss accepted programs, at most
    # ``seeds_per_round`` in total, newest kept on overflow.  All
    # choices follow index order, so the pool is identical whatever
    # the worker count.
    pool_set = set(pool)
    admitted = 0
    rejected_clean = [
        r for r in results
        if r["rejected_but_clean"] and "bytecode_hex" in r
    ]
    near_misses = [
        r for r in results if r["near_miss"] and "bytecode_hex" in r
    ]
    # Both candidate lists are bounded *before* shrinking: each
    # shrink costs up to 150 oracle evaluations, and pool-collision
    # skips must not pull ever more candidates into that cost.
    candidates = [
        (res, "rejected-clean")
        for res in rejected_clean[: spec.seed_shrink_per_round]
    ] + [
        (res, "near-miss")
        for res in near_misses[: spec.seeds_per_round]
    ]
    for res, kind in candidates:
        if admitted >= spec.seeds_per_round:
            break
        program = Program.from_bytes(bytes.fromhex(res["bytecode_hex"]))
        seed_prog = _shrink_seed(spec, program, res["seed"], kind)
        hex_code = seed_prog.to_bytes().hex()
        if hex_code in pool_set:
            continue
        pool.append(hex_code)
        pool_set.add(hex_code)
        corpus.add_seed(
            seed_prog, seed=res["seed"], profile=spec.profile,
            note=f"{kind} index {res['index']} "
                 f"(shrunk to {len(seed_prog)} insns)",
        )
        admitted += 1
    stats.seeds_pooled += admitted
    if len(pool) > spec.pool_limit:
        del pool[: len(pool) - spec.pool_limit]

    # Scalar counters derive from the (deterministic) report so the
    # two never drift; only timing/checks live on stats alone.
    stats.executed = report.programs
    stats.accepted = report.accepted
    stats.rejected = report.rejected
    stats.rejected_clean = report.rejected_clean
    stats.mutants = report.mutants
    stats.violations = report.violations


# -- the campaign loop ----------------------------------------------------------


def run_precision_campaign(
    spec: CampaignSpec,
    corpus: Optional[Corpus] = None,
    state_dir: Optional["str | Path"] = None,
    stop_after_rounds: Optional[int] = None,
    verdict_cache: Optional[VerdictCache] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> PrecisionCampaignResult:
    """Run (or resume) a precision campaign.

    With ``state_dir`` the campaign checkpoints after each round and a
    later call with the same spec resumes from the last checkpoint (the
    checkpointed corpus wins over a caller-supplied ``corpus`` then).
    ``stop_after_rounds`` bounds how many *additional* rounds this call
    executes (used to exercise resumption; ``None`` runs to completion).

    ``verdict_cache`` memoizes verifier verdicts across structurally
    identical programs (see :mod:`repro.bpf.canon`).  It is a runtime
    accelerator, not part of the :class:`CampaignSpec`: the
    PrecisionReport is byte-identical with or without it, at any worker
    count, and resumed campaigns may toggle it freely.  Workers get a
    snapshot per round and ship new entries back per item; the caller's
    cache object accumulates everything (mirroring the obs shard merge).

    ``retry_policy`` governs crash recovery in the multi-worker path
    (see :mod:`repro.fuzz.resilience`): a worker that dies or hangs
    mid-batch costs a bounded retry, and a batch that keeps failing is
    quarantined (recorded on the result, and as a poison artifact under
    ``<state_dir>/poison/``) instead of hanging the round.  Like the
    cache it is a runtime knob, deliberately outside the spec — the
    report stays byte-identical to a fault-free run whenever no batch
    is actually quarantined.
    """
    retry_policy = retry_policy or RetryPolicy()
    state_path = Path(state_dir) if state_dir is not None else None
    if state_path is not None:
        # Fail before any fuzzing, not at the first checkpoint.
        try:
            state_path.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise CampaignStateError(
                f"state path {state_path} is not usable as a directory: "
                f"{exc}"
            )
    loaded = _load_state(state_path, spec) if state_path else None
    if loaded is not None:
        stats, report, pool, saved_corpus = loaded
        # The checkpointed corpus stays authoritative on resume — a
        # caller-supplied corpus would drop entries the resumed report
        # already counts (and overwrite the checkpoint with the loss).
        corpus = saved_corpus
    else:
        stats = PrecisionCampaignStats(budget=spec.budget)
        report = PrecisionReport()
        pool = []
        corpus = corpus if corpus is not None else Corpus()

    budgets = _round_budgets(spec)
    started = time.perf_counter()
    rounds_this_call = 0
    quarantined_payloads: List[Dict] = []

    for rnd in range(stats.rounds_completed, spec.rounds):
        if stop_after_rounds is not None and rounds_this_call >= stop_after_rounds:
            break
        start_index = sum(budgets[:rnd])
        indices = range(start_index, start_index + budgets[rnd])
        # The spec and seed pool are shipped once per worker per round
        # (not once per work item) — the pool alone can hold pool_limit
        # programs of bytecode, so work items stay bare indices.
        round_pool = tuple(pool)
        if spec.workers > 1 and len(indices) > 1:
            cache_snapshot = (
                verdict_cache.to_payload()
                if verdict_cache is not None else None
            )
            with _obs.tracer().span(
                "campaign.round", round=rnd, programs=len(indices),
                workers=spec.workers,
            ):
                lease_out = run_leased_batches(
                    batch_indices(indices, spec.workers),
                    _fuzz_batch,
                    spec.workers,
                    initializer=_set_worker_state,
                    initargs=(
                        spec, round_pool, _obs.worker_init_state(),
                        cache_snapshot,
                    ),
                    policy=retry_policy,
                )
            results = lease_out.results
            stats.retries += lease_out.retries
            stats.quarantined += len(lease_out.quarantined)
            for poison in _record_quarantine(
                state_path, rnd, spec, round_pool, lease_out.quarantined
            ):
                quarantined_payloads.append(poison)
        else:
            _set_worker_state(spec, round_pool, cache=verdict_cache)
            with _obs.tracer().span(
                "campaign.round", round=rnd, programs=len(indices),
                workers=1,
            ):
                results = [_fuzz_one(index) for index in indices]
        merge_round_results(
            spec, stats, report, pool, corpus, results,
            verdict_cache=verdict_cache,
        )

        stats.rounds_completed = rnd + 1
        rounds_this_call += 1
        if state_path is not None:
            stats.elapsed_seconds += time.perf_counter() - started
            started = time.perf_counter()
            _save_state(state_path, spec, stats, report, pool, corpus)
        if _obs.enabled():
            live_elapsed = stats.elapsed_seconds
            if state_path is None:
                live_elapsed += time.perf_counter() - started
            _obs.publish_heartbeat({
                "phase": "campaign",
                "round": stats.rounds_completed,
                "rounds": spec.rounds,
                "budget": spec.budget,
                "executed": stats.executed,
                "accepted": stats.accepted,
                "rejected_clean": stats.rejected_clean,
                "violations": stats.violations,
                "retries": stats.retries,
                "quarantined": stats.quarantined,
                "corpus_size": len(corpus),
                "pool_size": len(pool),
                "elapsed_s": round(live_elapsed, 3),
                "programs_per_s": round(
                    stats.executed / live_elapsed, 1
                ) if live_elapsed > 0 else 0.0,
                # Where verifier time goes, so a long campaign's live
                # snapshot answers the paper's cost question per operator.
                "top_verifier_ops": [
                    {
                        "op": label,
                        "total_s": round(t.total_ns / 1e9, 6),
                        "calls": t.count,
                    }
                    for label, t in
                    _obs.default_registry().top_timers("verifier", 5)
                ],
            }, force=True)

    if state_path is None:
        stats.elapsed_seconds += time.perf_counter() - started
    return PrecisionCampaignResult(
        stats, corpus, report, pool, quarantined=quarantined_payloads
    )
