"""Delta-debugging minimizer for counterexample programs.

Given a program and a predicate ("still fails the oracle"), repeatedly
deletes instruction chunks ddmin-style and simplifies immediates until a
fixpoint.  Deleting from a BPF program is not free — jump offsets count
encoding slots — so candidates are rebuilt by *retargeting*: every kept
jump's absolute target is recomputed against the surviving instruction
list (a jump whose target was deleted falls through to the next survivor).
Structurally invalid candidates (bad offsets, no exit) are simply skipped;
the predicate is only consulted on well-formed programs.

The result is the smallest failing witness the pass structure can reach —
in practice a handful of instructions, which is what makes fuzzer
failures actionable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.bpf.insn import Instruction
from repro.bpf.program import Program, ProgramError

__all__ = ["shrink_program", "ShrinkStats", "slot_prefix"]

Predicate = Callable[[Program], bool]


@dataclasses.dataclass
class ShrinkStats:
    """Bookkeeping for one shrink run."""

    initial_insns: int = 0
    final_insns: int = 0
    candidates_tried: int = 0
    candidates_failing: int = 0


def slot_prefix(insns: List[Instruction]) -> List[int]:
    """Encoding-slot address of each instruction (shared with mutate)."""
    slots, s = [], 0
    for insn in insns:
        slots.append(s)
        s += insn.slots()
    return slots


_slot_prefix = slot_prefix


def _jump_target_index(
    insns: List[Instruction], slots: List[int], j: int
) -> Optional[int]:
    """Absolute instruction index a jump at ``j`` targets (None = invalid)."""
    insn = insns[j]
    target_slot = slots[j] + insn.slots() + insn.off
    try:
        return slots.index(target_slot)
    except ValueError:
        return None


def _is_retargetable_jump(insn: Instruction) -> bool:
    from repro.bpf import isa

    return (
        insn.is_jump()
        and not insn.is_exit()
        and isa.BPF_OP(insn.opcode) != isa.JMP_CALL
    )


def rebuild_without(
    insns: List[Instruction], keep: List[int]
) -> Optional[Program]:
    """Build a program from the ``keep`` indices, retargeting jumps.

    Returns ``None`` when the candidate cannot be made structurally
    valid (e.g. a jump would point past the end, or offsets overflow).
    """
    old_slots = _slot_prefix(insns)
    keep_set = set(keep)

    # Old target index for each kept jump, resolved before deletion.
    old_targets = {}
    for j in keep:
        if _is_retargetable_jump(insns[j]):
            t = _jump_target_index(insns, old_slots, j)
            if t is None:
                return None
            old_targets[j] = t

    # Map old index -> new index; deleted targets fall through to the
    # next surviving instruction.
    new_index = {}
    kept_sorted = sorted(keep_set)
    for new_i, old_i in enumerate(kept_sorted):
        new_index[old_i] = new_i

    def resolve(old_target: int) -> Optional[int]:
        for old_i in kept_sorted:
            if old_i >= old_target:
                return new_index[old_i]
        return None

    new_insns = [insns[i] for i in kept_sorted]
    new_slots = _slot_prefix(new_insns)
    for j, old_t in old_targets.items():
        new_j = new_index[j]
        new_t = resolve(old_t)
        if new_t is None:
            return None
        off = new_slots[new_t] - (new_slots[new_j] + new_insns[new_j].slots())
        if not -(1 << 15) <= off < (1 << 15):
            return None
        new_insns[new_j] = dataclasses.replace(new_insns[new_j], off=off)

    try:
        return Program(new_insns)
    except (ProgramError, ValueError):
        return None


def _try(
    candidate: Optional[Program], predicate: Predicate, stats: ShrinkStats
) -> bool:
    if candidate is None:
        return False
    stats.candidates_tried += 1
    if predicate(candidate):
        stats.candidates_failing += 1
        return True
    return False


def _delete_pass(
    insns: List[Instruction],
    predicate: Predicate,
    stats: ShrinkStats,
    max_candidates: int,
) -> List[Instruction]:
    """ddmin: delete chunks of halving size until 1-instruction granularity."""
    chunk = max(1, len(insns) // 2)
    while chunk >= 1:
        i = 0
        while i < len(insns):
            if stats.candidates_tried >= max_candidates:
                return insns
            keep = [k for k in range(len(insns)) if not (i <= k < i + chunk)]
            if not keep:
                i += chunk
                continue
            candidate = rebuild_without(insns, keep)
            if _try(candidate, predicate, stats):
                insns = list(candidate.insns)
                # stay at the same position: the list shifted left
            else:
                i += chunk
        chunk //= 2
    return insns


def _simplify_pass(
    insns: List[Instruction],
    predicate: Predicate,
    stats: ShrinkStats,
    max_candidates: int,
) -> List[Instruction]:
    """Zero out immediates where the failure survives it."""
    for i, insn in enumerate(insns):
        if stats.candidates_tried >= max_candidates:
            break
        for simpler in (0, 1):
            if insn.imm == simpler or insn.is_jump():
                continue
            trial = list(insns)
            trial[i] = dataclasses.replace(insn, imm=simpler)
            candidate = rebuild_without(trial, list(range(len(trial))))
            if _try(candidate, predicate, stats):
                insns = trial
                break
    return insns


def shrink_program(
    program: Program,
    predicate: Predicate,
    max_rounds: int = 8,
    max_candidates: int = 2000,
) -> "tuple[Program, ShrinkStats]":
    """Minimize ``program`` while ``predicate`` (still-failing) holds.

    ``predicate`` must already be True for ``program`` and must be
    deterministic, or the shrink walk is meaningless.
    """
    stats = ShrinkStats(initial_insns=len(program.insns))
    insns = list(program.insns)
    for _ in range(max_rounds):
        before = len(insns)
        insns = _delete_pass(insns, predicate, stats, max_candidates)
        insns = _simplify_pass(insns, predicate, stats, max_candidates)
        if len(insns) == before or stats.candidates_tried >= max_candidates:
            break
    stats.final_insns = len(insns)
    return Program(insns), stats
