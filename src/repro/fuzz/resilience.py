"""Per-batch leases with bounded retry: the campaign's crash-recovery core.

``multiprocessing.Pool.map`` — what the driver and campaign used before
this module — has no recovery story: a worker that dies mid-item (OOM
kill, preemption, an injected :func:`repro.faults.crash_point`) leaves
``map`` waiting forever on a result that will never arrive, and a hung
item stalls the whole round.  This runner replaces it with the
queue-and-lease idiom the ROADMAP's scale-out item calls for, scoped to
one machine:

* the parent owns the work: each **batch** of item indices is a lease,
  assigned to exactly one worker over a dedicated pipe, so a dead
  worker's in-flight batch is always attributable (no guessing which
  task a broken pool lost);
* workers are **expendable**: a crash (detected via the process
  sentinel) or a lease that outlives ``lease_timeout_s`` (the worker is
  killed) costs one retry for that batch, with exponential backoff, and
  a replacement worker is spawned;
* a batch that fails ``max_attempts`` times is **quarantined** — the
  round completes without it and the caller records the poison batch
  (indices, seeds, fault fingerprint) instead of dying;
* results are byte-identical to a fault-free run whenever no batch is
  actually lost: item results are keyed on their campaign index, and a
  retried batch re-executes the same index-derived streams.

The runner is deliberately transport-free of campaign specifics: the
driver and the precision campaign both hand it a module-level batch
function plus their existing worker initializer, so worker state
shipping (spec, mutation pool, obs switch, verdict-cache snapshot) is
unchanged from the ``Pool`` era.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro import obs as _obs

__all__ = [
    "RetryPolicy",
    "QuarantinedBatch",
    "LeaseOutcome",
    "run_leased_batches",
    "batch_indices",
    "lease_expired",
]

#: ``task(indices, attempt, inject_ok) -> [result, ...]`` — must be a
#: module-level function (it crosses the process boundary by name).
BatchTask = Callable[[Sequence[int], int, bool], List[Dict]]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runner tries before quarantining a batch.

    ``max_attempts`` counts the first execution: the default 3 means one
    run plus two retries.  With ``fault_free_final_attempt`` (the
    default) the last attempt runs with crash *injection* suppressed —
    injected chaos is bounded so a chaos campaign deterministically
    converges to the fault-free report; real faults still exhaust the
    attempts and quarantine.

    ``jitter`` desynchronizes retry storms: a crash that takes out many
    workers at once would otherwise have every batch retry on the exact
    same ``base * 2^(attempt-1)`` schedule.  Each delay is scaled into
    ``[delay * (1 - jitter), delay]`` by a hash of ``(seed, key,
    attempt)`` — never wall clock, never a shared RNG — so chaos runs
    stay exactly reproducible (``seed`` is threaded from the campaign
    seed by the CLI).
    """

    max_attempts: int = 3
    lease_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    fault_free_final_attempt: bool = True
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.lease_timeout_s is not None and self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_s(self, attempt: int, key: Iterable[object] = ()) -> float:
        """Delay before attempt ``attempt`` (0 for the first run).

        ``key`` scopes the jitter (batch id, worker name, ...): distinct
        keys back off at distinct points inside the jitter window.
        """
        if attempt <= 0:
            return 0.0
        delay = min(
            self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_max_s
        )
        if self.jitter <= 0.0:
            return delay
        digest = hashlib.blake2b(
            f"{self.seed}|backoff|{tuple(key)!r}|{attempt}".encode(),
            digest_size=8,
        ).digest()
        fraction = int.from_bytes(digest, "big") / float(1 << 64)
        return delay * (1.0 - self.jitter * fraction)


@dataclass
class QuarantinedBatch:
    """One poison batch: what failed, how often, and why."""

    batch_id: int
    indices: List[int]
    attempts: int
    #: per-attempt failure fingerprints, oldest first — each is
    #: ``{"kind": "crash"|"timeout"|"error", "detail": ...}``.
    fingerprints: List[Dict] = field(default_factory=list)

    def to_payload(self) -> Dict:
        return {
            "batch_id": self.batch_id,
            "indices": list(self.indices),
            "attempts": self.attempts,
            "fingerprints": list(self.fingerprints),
        }


@dataclass
class LeaseOutcome:
    """Everything one leased round produced."""

    results: List[Dict]
    quarantined: List[QuarantinedBatch] = field(default_factory=list)
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    errors: int = 0


def lease_expired(deadline: Optional[float], now: float) -> bool:
    """Has a lease with ``deadline`` expired at ``now``?

    The boundary is deliberately *exclusive*: a result arriving exactly
    at the deadline is still inside the lease.  Shared by this runner
    and the distributed coordinator (:mod:`repro.fuzz.dist`) so the two
    lease semantics cannot drift.
    """
    return deadline is not None and now > deadline


def batch_indices(indices: Sequence[int], workers: int) -> List[List[int]]:
    """Slice a round's indices into lease-sized batches.

    Same sizing the ``Pool`` era used for its chunks (``len // (workers
    * 8)``): small enough that a lost batch retries cheaply, large
    enough that lease bookkeeping stays off the hot path.
    """
    chunk = max(1, len(indices) // (max(1, workers) * 8))
    seq = list(indices)
    return [seq[i:i + chunk] for i in range(0, len(seq), chunk)]


# -- the worker side --------------------------------------------------------


def _lease_worker(
    conn,
    task: BatchTask,
    initializer: Optional[Callable],
    initargs: Tuple,
    faults_state: Optional[str],
) -> None:
    """Worker main loop: lease in, results (or a soft error) out.

    Hard crashes (``os._exit``, SIGKILL) need no handling here — the
    parent sees the process sentinel fire and recovers.  Exceptions are
    *soft* failures: reported over the pipe, the worker stays up.
    """
    _faults.init_worker(faults_state)
    if initializer is not None:
        initializer(*initargs)
    while True:
        message = conn.recv()
        if message[0] == "stop":
            conn.close()
            return
        _, batch_id, indices, attempt, inject = message
        try:
            results = task(indices, attempt, inject)
        except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
            conn.send(("error", batch_id, repr(exc)))
        else:
            conn.send(("done", batch_id, results))


class _Worker:
    """Parent-side handle: process + pipe + the lease it currently holds."""

    __slots__ = ("process", "conn", "lease")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: (batch_id, attempt, deadline | None) while a lease is out.
        self.lease: Optional[Tuple[int, int, Optional[float]]] = None


def _spawn_worker(
    task: BatchTask,
    initializer: Optional[Callable],
    initargs: Tuple,
) -> _Worker:
    parent_conn, child_conn = multiprocessing.Pipe()
    process = multiprocessing.Process(
        target=_lease_worker,
        args=(
            child_conn, task, initializer, initargs,
            _faults.worker_init_state(),
        ),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _Worker(process, parent_conn)


# -- the parent loop --------------------------------------------------------


def run_leased_batches(
    batches: Sequence[Sequence[int]],
    task: BatchTask,
    workers: int,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    policy: Optional[RetryPolicy] = None,
) -> LeaseOutcome:
    """Run every batch through ``task`` on a leased worker pool.

    Returns once every batch has either produced results or been
    quarantined; never raises on worker failure.  Results preserve no
    particular order — callers sort on their item index, exactly as
    they did with ``Pool.map``.
    """
    policy = policy or RetryPolicy()
    outcome = LeaseOutcome(results=[])
    if not batches:
        return outcome

    #: (batch_id, attempt, not_before) — ready work, newest retries last.
    pending: List[Tuple[int, int, float]] = [
        (batch_id, 0, 0.0) for batch_id in range(len(batches))
    ]
    attempts_fps: Dict[int, List[Dict]] = {b: [] for b in range(len(batches))}
    outstanding = len(batches)

    pool: List[_Worker] = [
        _spawn_worker(task, initializer, initargs)
        for _ in range(min(workers, len(batches)))
    ]

    def fail_lease(worker: _Worker, kind: str, detail: object) -> None:
        """One lease attempt failed: retry with backoff or quarantine."""
        nonlocal outstanding
        assert worker.lease is not None
        batch_id, attempt, _deadline = worker.lease
        worker.lease = None
        fingerprint = {"kind": kind, "detail": detail}
        attempts_fps[batch_id].append(fingerprint)
        if kind == "crash":
            outcome.crashes += 1
        elif kind == "timeout":
            outcome.timeouts += 1
        else:
            outcome.errors += 1
        next_attempt = attempt + 1
        if next_attempt >= policy.max_attempts:
            outcome.quarantined.append(QuarantinedBatch(
                batch_id=batch_id,
                indices=list(batches[batch_id]),
                attempts=next_attempt,
                fingerprints=attempts_fps[batch_id],
            ))
            outstanding -= 1
            if _obs.enabled():
                _obs.default_registry().counter("campaign.quarantined").inc()
        else:
            outcome.retries += 1
            if _obs.enabled():
                _obs.default_registry().counter("campaign.retries").inc()
            pending.append((
                batch_id, next_attempt,
                time.monotonic()
                + policy.backoff_s(next_attempt, key=(batch_id,)),
            ))

    def retire(worker: _Worker, kind: str, detail: object) -> None:
        """A worker died (or was killed): fail its lease, drop the handle."""
        if worker.lease is not None:
            fail_lease(worker, kind, detail)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5)
        pool.remove(worker)

    try:
        while outstanding > 0:
            now = time.monotonic()
            # Assign ready leases to idle workers (spawning replacements
            # up to the pool size when crashes have thinned the pool).
            ready = [p for p in pending if p[2] <= now]
            idle = [w for w in pool if w.lease is None]
            while ready and (idle or len(pool) < workers):
                worker = idle.pop() if idle else None
                if worker is None:
                    worker = _spawn_worker(task, initializer, initargs)
                    pool.append(worker)
                batch_id, attempt, _ = ready.pop(0)
                pending.remove((batch_id, attempt, _))
                inject = not (
                    policy.fault_free_final_attempt
                    and attempt == policy.max_attempts - 1
                )
                deadline = (
                    now + policy.lease_timeout_s
                    if policy.lease_timeout_s is not None else None
                )
                try:
                    worker.conn.send(
                        ("batch", batch_id, list(batches[batch_id]),
                         attempt, inject)
                    )
                except (BrokenPipeError, OSError):
                    # Worker died before taking the lease; the batch
                    # never ran, so this is a crash attempt like any
                    # other (bounded — a worker that dies at init every
                    # time must not retry forever).
                    worker.lease = (batch_id, attempt, None)
                    retire(worker, "crash", "worker died before lease")
                    continue
                worker.lease = (batch_id, attempt, deadline)

            # Wake on: a result/pipe event, a worker death (sentinel), a
            # lease deadline, or a retry becoming ready.
            wake_at: Optional[float] = None
            for worker in pool:
                if worker.lease is not None and worker.lease[2] is not None:
                    deadline = worker.lease[2]
                    wake_at = (
                        deadline if wake_at is None
                        else min(wake_at, deadline)
                    )
            for _b, _a, not_before in pending:
                wake_at = (
                    not_before if wake_at is None
                    else min(wake_at, not_before)
                )
            timeout = 0.5
            if wake_at is not None:
                timeout = min(timeout, max(0.0, wake_at - time.monotonic()))
            watch = {w.conn: w for w in pool if w.lease is not None}
            sentinels = {w.process.sentinel: w for w in pool}
            if not watch and not sentinels and not pending:
                break   # no workers, no work: nothing can progress
            fired = _conn_wait(
                list(watch) + list(sentinels), timeout=timeout
            )

            handled = set()
            for obj in fired:
                worker = watch.get(obj) or sentinels.get(obj)
                if worker is None or id(worker) in handled:
                    continue
                handled.add(id(worker))
                if obj in sentinels and obj not in watch:
                    # Death notification; drain any final message first —
                    # a worker can send its result and *then* crash.
                    if worker.lease is not None and worker.conn.poll():
                        obj = worker.conn
                    else:
                        retire(
                            worker, "crash",
                            f"exit code {worker.process.exitcode}",
                        )
                        continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    retire(
                        worker, "crash",
                        f"exit code {worker.process.exitcode}",
                    )
                    continue
                kind, batch_id, payload = message
                lease = worker.lease
                worker.lease = None
                if lease is None or lease[0] != batch_id:
                    continue   # stale message from a superseded lease
                if kind == "done":
                    outcome.results.extend(payload)
                    outstanding -= 1
                else:   # soft error inside the task
                    worker.lease = lease
                    fail_lease(worker, "error", payload)

            # Expired leases: the worker is wedged (hung item, injected
            # hang) — kill it and retry the batch elsewhere.
            now = time.monotonic()
            for worker in list(pool):
                lease = worker.lease
                if lease is not None and lease_expired(lease[2], now):
                    worker.process.kill()
                    retire(
                        worker, "timeout",
                        f"lease exceeded {policy.lease_timeout_s}s",
                    )
    finally:
        for worker in list(pool):
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in pool:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
    return outcome
