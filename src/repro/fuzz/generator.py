"""Seeded, typed random BPF program generator.

Emits *verifier-plausible* programs: instruction operands are chosen
against a shadow type state (which registers hold initialized scalars,
which hold pointers, which stack slots have been written), so the bulk of
generated programs get past the verifier's structural checks and give the
differential oracle real abstract states to compare against.  Programs
are always structurally valid (`Program` construction succeeds), acyclic
(forward branches only, so every run terminates), and end in ``exit``
with a scalar in r0.

Generation is driven by an :class:`OpcodeProfile` — a weighted mix over
instruction categories (64/32-bit ALU, branch diamonds with
reconvergence, stack and context loads/stores, constrained pointer
arithmetic, wide immediates).  Profiles let a campaign steer toward the
operators under test: ``alu`` stresses the paper's scalar transfer
functions, ``memory`` stresses bounds/alignment checking, ``branchy``
stresses branch refinement and state joins.

Everything is deterministic in the supplied seed: the same
``(seed, profile, max_insns)`` triple always yields bit-identical
bytecode, which is what makes campaign results reproducible and corpus
entries replayable.

Precision campaigns extend generation with *mutation feedback*
(:mod:`repro.fuzz.mutate`): shrunk near-miss and rejected-but-clean
programs re-enter as mutation seeds, spliced against freshly generated
donors and perturbed with the same :data:`INTERESTING_IMMS` /
:data:`INTERESTING_IMM64` boundary constants used here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.bpf import isa
from repro.bpf.builder import ProgramBuilder
from repro.bpf.program import Program

__all__ = [
    "OpcodeProfile",
    "PROFILES",
    "GeneratedProgram",
    "ProgramGenerator",
    "generate_program",
    "INTERESTING_IMMS",
    "INTERESTING_IMM64",
]

U64 = (1 << 64) - 1

#: Immediates that exercise carries, sign boundaries, and tnum masks far
#: better than uniform draws do.  Shared with the mutation engine's
#: constant-nudge pass.
INTERESTING_IMMS = [
    0, 1, 2, 3, 7, 8, 15, 16, 31, 32, 63, 64, 255, 256, 4095, 4096,
    0x7FFF, 0x8000, 0xFFFF, 0x7FFF_FFFF, -1, -2, -7, -8, -256, -4096,
    -0x8000_0000,
]

INTERESTING_IMM64 = [
    0, 1, (1 << 32) - 1, 1 << 32, (1 << 63) - 1, 1 << 63, U64,
    0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555, 0x0123_4567_89AB_CDEF,
]

# Backward-compatible private aliases (pre-campaign name).
_INTERESTING_IMMS = INTERESTING_IMMS
_INTERESTING_IMM64 = INTERESTING_IMM64

#: ALU ops applied between scalars (NEG is emitted separately; MOV has
#: its own categories).
_SCALAR_OPS = [
    "add", "sub", "mul", "div", "mod", "and", "or", "xor",
]
_SHIFT_OPS = ["lsh", "rsh", "arsh"]

_COND_JUMPS = [
    "jeq", "jne", "jgt", "jge", "jlt", "jle", "jset",
    "jsgt", "jsge", "jslt", "jsle",
]


@dataclass(frozen=True)
class OpcodeProfile:
    """A weighted opcode mix; weights need not be normalized."""

    name: str
    weights: Dict[str, float]

    def categories(self) -> Tuple[List[str], List[float]]:
        cats = sorted(self.weights)
        return cats, [self.weights[c] for c in cats]


PROFILES: Dict[str, OpcodeProfile] = {
    "mixed": OpcodeProfile("mixed", {
        "alu_imm": 4.0, "alu_reg": 3.0, "alu32": 2.0, "shift": 2.0,
        "mov_imm": 3.0, "mov_reg": 1.5, "lddw": 1.0, "neg": 0.5,
        "branch": 2.0, "stack_store": 2.0, "stack_load": 1.5,
        "ctx_load": 1.5, "ptr_arith": 1.0, "var_ptr_load": 0.5,
    }),
    "alu": OpcodeProfile("alu", {
        "alu_imm": 6.0, "alu_reg": 5.0, "alu32": 3.0, "shift": 3.0,
        "mov_imm": 3.0, "mov_reg": 1.0, "lddw": 2.0, "neg": 1.0,
        "branch": 1.0,
    }),
    "memory": OpcodeProfile("memory", {
        "alu_imm": 2.0, "mov_imm": 2.0, "stack_store": 4.0,
        "stack_load": 3.0, "ctx_load": 3.0, "ptr_arith": 2.5,
        "var_ptr_load": 1.5, "branch": 1.0,
    }),
    "branchy": OpcodeProfile("branchy", {
        "alu_imm": 3.0, "alu_reg": 2.0, "mov_imm": 2.0,
        "branch": 5.0, "stack_store": 1.0, "ctx_load": 1.0,
    }),
}


@dataclass
class GeneratedProgram:
    """A generated program plus the recipe that reproduces it."""

    program: Program
    seed: int
    profile: str
    max_insns: int
    ctx_size: int = 64


@dataclass
class _TypeState:
    """Shadow types tracked during generation (mirrors verifier kinds).

    ``scalars`` — registers provably holding initialized scalars;
    ``stack_ptrs`` — registers holding a stack pointer at a *known
    constant* frame offset; ``ctx_ok`` — whether r1 still holds the
    context pointer; ``written`` — 8-aligned frame offsets whose slot has
    been fully written.
    """

    scalars: Set[int] = field(default_factory=set)
    stack_ptrs: Dict[int, int] = field(default_factory=dict)
    ctx_ok: bool = True
    written: Set[int] = field(default_factory=set)

    def copy(self) -> "_TypeState":
        return _TypeState(
            set(self.scalars), dict(self.stack_ptrs), self.ctx_ok,
            set(self.written),
        )

    def merge(self, other: "_TypeState") -> "_TypeState":
        """Post-reconvergence state: facts that hold on *both* arms.

        Mirrors the verifier's join: mixed kinds become unusable, stack
        pointers survive only when both arms agree on the offset, and a
        slot counts as written only when every path wrote it.
        """
        ptrs = {
            r: off for r, off in self.stack_ptrs.items()
            if other.stack_ptrs.get(r) == off
        }
        return _TypeState(
            self.scalars & other.scalars,
            ptrs,
            self.ctx_ok and other.ctx_ok,
            self.written & other.written,
        )

    def clobber(self, reg: int) -> None:
        self.scalars.discard(reg)
        self.stack_ptrs.pop(reg, None)
        if reg == 1:
            self.ctx_ok = False


class ProgramGenerator:
    """Generates one program per :meth:`generate` call, deterministically.

    A generator instance is cheap; campaigns build one per program index
    so results are independent of worker scheduling.
    """

    def __init__(
        self,
        seed: int,
        profile: str = "mixed",
        max_insns: int = 32,
        ctx_size: int = 64,
    ) -> None:
        if profile not in PROFILES:
            raise KeyError(
                f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
            )
        self.seed = seed
        self.profile = PROFILES[profile]
        self.max_insns = max(4, max_insns)
        self.ctx_size = ctx_size
        self._rng = random.Random(seed)
        self._label = 0

    # -- public API ---------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        rng = self._rng
        b = ProgramBuilder()
        state = _TypeState()
        self._label = 0

        # r0 starts as a scalar so any early exit is well-typed.
        b.mov_imm(0, self._imm(rng))
        state.scalars.add(0)

        budget = self.max_insns - 2  # entry mov + trailing exit
        self._sequence(b, rng, state, budget, depth=0)

        if 0 not in state.scalars:
            b.mov_imm(0, self._imm(rng))
        b.exit_()
        program = b.build()
        return GeneratedProgram(
            program, self.seed, self.profile.name, self.max_insns,
            self.ctx_size,
        )

    # -- sequencing ---------------------------------------------------------

    def _sequence(
        self,
        b: ProgramBuilder,
        rng: random.Random,
        state: _TypeState,
        budget: int,
        depth: int,
    ) -> int:
        """Emit instructions worth roughly ``budget`` slots; returns cost."""
        cats, weights = self.profile.categories()
        spent = 0
        while spent < budget:
            cat = rng.choices(cats, weights)[0]
            remaining = budget - spent
            emit = getattr(self, f"_emit_{cat}")
            cost = emit(b, rng, state, remaining, depth)
            if cost == 0:
                # Category wasn't applicable (no operands / no budget):
                # fall back to something always emittable.
                cost = self._emit_mov_imm(b, rng, state, remaining, depth)
            spent += cost
        return spent

    def _fresh_label(self, tag: str) -> str:
        self._label += 1
        return f"{tag}_{self._label}"

    # -- operand selection --------------------------------------------------

    @staticmethod
    def _imm(rng: random.Random) -> int:
        if rng.random() < 0.6:
            return rng.choice(_INTERESTING_IMMS)
        return rng.randint(-(1 << 31), (1 << 31) - 1)

    def _scalar_reg(
        self, rng: random.Random, state: _TypeState
    ) -> Optional[int]:
        if not state.scalars:
            return None
        return rng.choice(sorted(state.scalars))

    def _writable_reg(self, rng: random.Random, state: _TypeState) -> int:
        """A register we may overwrite.  r10 is never writable; r1 is
        preserved most of the time so context loads stay available."""
        pool = [r for r in range(10) if r != 1 or rng.random() < 0.05]
        return rng.choice(pool)

    # -- categories ----------------------------------------------------------
    # Each _emit_* returns the number of instructions emitted (0 = not
    # applicable in the current state/budget).

    def _emit_mov_imm(self, b, rng, state: _TypeState, budget, depth) -> int:
        dst = self._writable_reg(rng, state)
        b.mov_imm(dst, self._imm(rng), is64=rng.random() < 0.8)
        state.clobber(dst)
        state.scalars.add(dst)
        return 1

    def _emit_mov_reg(self, b, rng, state: _TypeState, budget, depth) -> int:
        src = self._scalar_reg(rng, state)
        if src is None:
            return 0
        dst = self._writable_reg(rng, state)
        b.mov_reg(dst, src)
        state.clobber(dst)
        state.scalars.add(dst)
        return 1

    def _emit_lddw(self, b, rng, state: _TypeState, budget, depth) -> int:
        if budget < 2:
            return 0
        dst = self._writable_reg(rng, state)
        imm = (
            rng.choice(_INTERESTING_IMM64)
            if rng.random() < 0.6
            else rng.randint(0, U64)
        )
        b.ld_imm64(dst, imm)
        state.clobber(dst)
        state.scalars.add(dst)
        return 2

    def _emit_alu_imm(self, b, rng, state: _TypeState, budget, depth) -> int:
        dst = self._scalar_reg(rng, state)
        if dst is None:
            return 0
        b.alu_imm(rng.choice(_SCALAR_OPS), dst, self._imm(rng))
        return 1

    def _emit_alu_reg(self, b, rng, state: _TypeState, budget, depth) -> int:
        dst = self._scalar_reg(rng, state)
        src = self._scalar_reg(rng, state)
        if dst is None or src is None:
            return 0
        b.alu_reg(rng.choice(_SCALAR_OPS), dst, src)
        return 1

    def _emit_alu32(self, b, rng, state: _TypeState, budget, depth) -> int:
        dst = self._scalar_reg(rng, state)
        if dst is None:
            return 0
        if rng.random() < 0.5:
            src = self._scalar_reg(rng, state)
            if src is None:
                return 0
            b.alu_reg(rng.choice(_SCALAR_OPS), dst, src, is64=False)
        else:
            b.alu_imm(rng.choice(_SCALAR_OPS), dst, self._imm(rng), is64=False)
        return 1

    def _emit_neg(self, b, rng, state: _TypeState, budget, depth) -> int:
        dst = self._scalar_reg(rng, state)
        if dst is None:
            return 0
        b.neg(dst, is64=rng.random() < 0.8)
        return 1

    def _emit_shift(self, b, rng, state: _TypeState, budget, depth) -> int:
        """Shifts with in-range amounts (kernel rejects width-or-larger).

        Immediate shifts draw from ``[0, width)``.  Register shifts mask
        the amount first, keeping the concrete modular-shift semantics
        and the verifier's bounded-join in agreement.
        """
        dst = self._scalar_reg(rng, state)
        if dst is None:
            return 0
        op = rng.choice(_SHIFT_OPS)
        is64 = rng.random() < 0.7
        width = 64 if is64 else 32
        if rng.random() < 0.7 or len(state.scalars) < 2:
            b.alu_imm(op, dst, rng.randrange(width), is64=is64)
            return 1
        amt = self._scalar_reg(rng, state)
        if amt is None or amt == dst:
            b.alu_imm(op, dst, rng.randrange(width), is64=is64)
            return 1
        if budget < 2:
            return 0
        b.alu_imm("and", amt, width - 1)
        b.alu_reg(op, dst, amt, is64=is64)
        return 2

    def _emit_branch(self, b, rng, state: _TypeState, budget, depth) -> int:
        """A forward if/else diamond with reconvergence.

        ::

            jcc  rX, K, then_n
            ... else arm ...
            ja   join_n
          then_n:
            ... then arm ... [maybe mov r0, K; exit]
          join_n:
        """
        if budget < 6 or depth >= 3:
            return 0
        dst = self._scalar_reg(rng, state)
        if dst is None:
            return 0
        then_label = self._fresh_label("then")
        join_label = self._fresh_label("join")
        op = rng.choice(_COND_JUMPS)
        is64 = rng.random() < 0.8
        src = self._scalar_reg(rng, state)
        if src is not None and src != dst and rng.random() < 0.4:
            b.jmp_reg(op, dst, src, then_label, is64=is64)
        else:
            b.jmp_imm(op, dst, self._imm(rng), then_label, is64=is64)

        arm_budget = max(1, (budget - 3) // 2)
        else_state = state.copy()
        else_cost = self._sequence(b, rng, else_state, arm_budget, depth + 1)
        b.ja(join_label)

        b.label(then_label)
        then_state = state.copy()
        then_cost = self._sequence(b, rng, then_state, arm_budget, depth + 1)
        cost = 2 + else_cost + then_cost  # + jcc and ja
        if rng.random() < 0.15:
            # Early exit on the taken arm; the join stays reachable via
            # the else arm so no dead code is created.
            b.mov_imm(0, self._imm(rng))
            b.exit_()
            cost += 2
            # The merged state is whatever survives the else arm.
            merged = else_state
        else:
            merged = else_state.merge(then_state)
        b.label(join_label)

        state.scalars = merged.scalars
        state.stack_ptrs = merged.stack_ptrs
        state.ctx_ok = merged.ctx_ok
        state.written = merged.written
        return cost

    def _stack_slot(self, rng: random.Random) -> int:
        """An 8-aligned frame offset in a compact window near the top."""
        return -8 * rng.randint(1, 8)

    def _emit_stack_store(self, b, rng, state: _TypeState, budget, depth) -> int:
        off = self._stack_slot(rng)
        base_reg, base_off = self._stack_base(rng, state)
        rel = off - base_off
        if not -(1 << 15) <= rel < (1 << 15):
            return 0
        size = rng.choice([1, 2, 4, 8, 8])  # bias to full slots
        if size != 8 and rng.random() < 0.5:
            # Sub-word stores at aligned sub-offsets degrade the slot to
            # MISC — still a written slot for later loads.
            sub = rng.randrange(0, 8, size)
            rel += sub
        src = self._scalar_reg(rng, state)
        if src is not None and rng.random() < 0.7:
            b.stx(base_reg, rel, src, size=size)
        else:
            imm = self._imm(rng) & 0x7FFF_FFFF
            b.st_imm(base_reg, rel, imm, size=size)
        state.written.add(off)
        return 1

    def _emit_stack_load(self, b, rng, state: _TypeState, budget, depth) -> int:
        if not state.written:
            return 0
        off = rng.choice(sorted(state.written))
        base_reg, base_off = self._stack_base(rng, state)
        rel = off - base_off
        dst = self._writable_reg(rng, state)
        b.ldx(dst, base_reg, rel, size=8)
        state.clobber(dst)
        state.scalars.add(dst)
        return 1

    def _stack_base(
        self, rng: random.Random, state: _TypeState
    ) -> Tuple[int, int]:
        """r10 or a tracked derived stack pointer, with its frame offset."""
        if state.stack_ptrs and rng.random() < 0.4:
            reg = rng.choice(sorted(state.stack_ptrs))
            return reg, state.stack_ptrs[reg]
        return isa.FP_REG, 0

    def _emit_ptr_arith(self, b, rng, state: _TypeState, budget, depth) -> int:
        """Derive a stack pointer: rX = r10; rX -= 8k (constant)."""
        if budget < 2:
            return 0
        dst = rng.choice([r for r in range(6, 10)])
        delta = 8 * rng.randint(1, 8)
        b.mov_reg(dst, isa.FP_REG)
        b.alu_imm("sub", dst, delta)
        state.clobber(dst)
        state.stack_ptrs[dst] = -delta
        return 2

    def _emit_ctx_load(self, b, rng, state: _TypeState, budget, depth) -> int:
        if not state.ctx_ok:
            return 0
        sizes = [s for s in (1, 2, 4, 8) if s <= self.ctx_size]
        if not sizes:  # context too small to load from at all
            return 0
        size = rng.choice(sizes)
        off = rng.randrange(0, self.ctx_size - size + 1, size)
        dst = self._writable_reg(rng, state)
        if dst == 1:
            dst = 0
        b.ldx(dst, 1, off, size=size)
        state.clobber(dst)
        state.scalars.add(dst)
        return 1

    def _emit_var_ptr_load(
        self, b, rng, state: _TypeState, budget, depth
    ) -> int:
        """Constrained variable-offset pointer arithmetic.

        Writes a 4-slot window, masks a scalar to an 8-aligned value in
        ``[0, 24]``, adds it to a derived stack pointer, and loads.  The
        verifier proves this safe only because the tnum knows the low
        three bits are zero — the paper's marquee use case.
        """
        if budget < 8:
            return 0
        idx = self._scalar_reg(rng, state)
        if idx is None:
            return 0
        base = -64 + 8 * rng.randint(0, 4)  # window [base, base+24]
        for k in range(4):
            b.st_imm(isa.FP_REG, base + 8 * k, self._imm(rng) & 0xFFFF, size=8)
            state.written.add(base + 8 * k)
        ptr = rng.choice([r for r in range(6, 10) if r != idx])
        b.alu_imm("and", idx, 24)
        b.mov_reg(ptr, isa.FP_REG)
        b.alu_reg("add", ptr, idx)
        dst = rng.choice([r for r in range(6) if r != idx and r != 1])
        b.ldx(dst, ptr, base, size=8)
        state.clobber(ptr)
        state.clobber(dst)
        state.scalars.add(dst)
        return 8


def generate_program(
    seed: int,
    profile: str = "mixed",
    max_insns: int = 32,
    ctx_size: int = 64,
) -> GeneratedProgram:
    """Generate one program from a seed (convenience wrapper)."""
    return ProgramGenerator(seed, profile, max_insns, ctx_size).generate()
