"""Fuzz campaign driver: budgeted, parallel, deterministic.

A campaign fuzzes ``budget`` programs.  Program ``i`` is produced from an
RNG stream derived from ``(campaign_seed, i)`` — *not* from worker-local
state — so results are bit-identical regardless of worker count or
scheduling.  Workers (``multiprocessing.Pool``) each handle a slice of
indices; with ``workers=1`` everything runs inline, which keeps
monkeypatched oracles (used by tests to inject transfer-function bugs)
effective and makes single-process debugging trivial.

Violations are shrunk in the parent with the delta-debugging minimizer,
using the same input seeds that exposed them, and recorded into the
corpus alongside the original program.  The driver reports throughput
(programs/sec) — the fuzzing analogue of the paper's "fast" requirement:
a slow oracle caps how much of the program space a campaign can cover.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults as _faults
from repro import obs as _obs
from repro.bpf.program import Program

from .corpus import Corpus
from .generator import PROFILES, generate_program
from .oracle import DifferentialOracle
from .resilience import RetryPolicy, batch_indices, run_leased_batches
from .shrink import shrink_program

__all__ = [
    "CampaignConfig",
    "CampaignStats",
    "CampaignResult",
    "run_campaign",
    "program_seed",
    "shrink_violation",
]

U64 = (1 << 64) - 1

#: Odd multiplier decorrelating per-program RNG streams from the
#: campaign seed (splitmix64's increment).
_STREAM_MIX = 0x9E37_79B9_7F4A_7C15


def program_seed(campaign_seed: int, index: int) -> int:
    """Generator seed for program ``index`` of a campaign.

    Derived from ``(campaign_seed, index)`` only, never from worker-local
    state, so every campaign layer (plain driver, precision campaign)
    gets bit-identical streams regardless of worker count.
    """
    return (campaign_seed * _STREAM_MIX + index * 2_654_435_761 + 1) & U64


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign's outcome."""

    budget: int = 1000
    seed: int = 0
    workers: int = 1
    profile: str = "mixed"
    max_insns: int = 32
    ctx_size: int = 64
    inputs_per_program: int = 8
    shrink: bool = True
    keep_interesting: int = 0   # save every Nth accepted program (0 = none)

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise KeyError(
                f"unknown profile {self.profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )


@dataclass
class CampaignStats:
    """Aggregate campaign counters."""

    budget: int = 0
    executed: int = 0
    accepted: int = 0
    rejected: int = 0
    rejected_clean: int = 0      # rejected but ran fine (imprecision signal)
    violations: int = 0
    containment_checks: int = 0
    elapsed_seconds: float = 0.0
    # Crash-recovery counters (multi-worker path only): lease retries
    # spent and batches lost to quarantine.
    retries: int = 0
    quarantined: int = 0

    @property
    def programs_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.executed / self.elapsed_seconds

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.executed if self.executed else 0.0

    def summary(self) -> str:
        lines = [
            f"programs  : {self.executed}/{self.budget}",
            f"accepted  : {self.accepted} "
            f"({100 * self.acceptance_rate:.1f}%)",
            f"rejected  : {self.rejected} "
            f"(clean replay: {self.rejected_clean})",
            f"checks    : {self.containment_checks} register containments",
            f"violations: {self.violations}",
        ]
        if self.retries or self.quarantined:
            # Only under chaos/real faults — the fault-free summary is
            # byte-stable for goldens.
            lines.append(
                f"resilience: {self.retries} batch retries, "
                f"{self.quarantined} quarantined"
            )
        lines.append(
            f"throughput: {self.programs_per_second:.1f} programs/sec "
            f"({self.elapsed_seconds:.2f}s)"
        )
        return "\n".join(lines)


@dataclass
class CampaignResult:
    """Stats plus every violation found (with shrunk witnesses)."""

    stats: CampaignStats
    corpus: Corpus = field(default_factory=Corpus)

    @property
    def ok(self) -> bool:
        return self.stats.violations == 0


#: Campaign config, installed once per worker (pool initializer or
#: inline) instead of pickled into every work item.
_worker_config: Optional[CampaignConfig] = None


def _set_worker_config(
    config: CampaignConfig,
    obs_state: Optional[Tuple[bool, int]] = None,
) -> None:
    global _worker_config
    _worker_config = config
    # Workers inherit the parent's obs switch (so their compiled
    # closures instrument consistently) but no sinks — metrics travel
    # back on each result via the scoped registry.
    if obs_state is not None:
        _obs.init_worker(obs_state)


def _fuzz_index(index: int) -> Dict:
    """Fuzz one program index; returns a JSON-friendly summary.

    Top-level so it pickles for ``multiprocessing.Pool``; the config
    arrives via :func:`_set_worker_config`.
    """
    if _obs.enabled():
        # Merge-on-return: everything this item records (oracle
        # counters, per-op timings from instrumented closures) lands in
        # a private registry and ships back with the result.
        with _obs.scoped_registry() as registry:
            out = _fuzz_index_inner(index)
        out["obs"] = registry.to_dict()
        return out
    return _fuzz_index_inner(index)


def _fuzz_index_inner(index: int) -> Dict:
    config = _worker_config
    assert config is not None, "worker config not installed"
    seed = program_seed(config.seed, index)
    generated = generate_program(
        seed, config.profile, config.max_insns, config.ctx_size
    )
    oracle = DifferentialOracle(
        ctx_size=config.ctx_size,
        inputs_per_program=config.inputs_per_program,
    )
    report = oracle.check_program(generated.program, input_seed_base=seed)
    out: Dict = {
        "index": index,
        "seed": seed,
        "verdict": report.verdict,
        "checks": report.checks,
        "rejected_but_clean": report.rejected_but_clean,
        "violations": [asdict_violation(v) for v in report.violations],
    }
    if report.violations or (
        config.keep_interesting
        and report.verdict == "accepted"
        and index % config.keep_interesting == 0
    ):
        out["bytecode_hex"] = generated.program.to_bytes().hex()
    return out


def _fuzz_index_batch(
    indices: "Sequence[int]", attempt: int, inject: bool
) -> List[Dict]:
    """Lease-runner batch task (see :mod:`repro.fuzz.resilience`).

    The crash key includes the attempt, so an injected crash does not
    deterministically recur on retry; ``inject`` is False on the final
    attempt, which bounds injected chaos without masking real faults.
    """
    out: List[Dict] = []
    for index in indices:
        if inject and _faults.enabled():
            _faults.crash_point("campaign.worker.crash", (index, attempt))
        out.append(_fuzz_index(index))
    return out


def asdict_violation(v) -> Dict:
    return asdict(v)


def shrink_violation(
    config, bytecode_hex: str, input_seed_base: int
) -> Optional[Program]:
    """Minimize a failing program against the oracle that caught it.

    ``config`` needs only ``ctx_size`` and ``inputs_per_program``, so both
    the plain :class:`CampaignConfig` and the precision campaign's spec
    work here.
    """
    program = Program.from_bytes(bytes.fromhex(bytecode_hex))
    oracle = DifferentialOracle(
        ctx_size=config.ctx_size,
        inputs_per_program=config.inputs_per_program,
    )

    def still_failing(candidate: Program) -> bool:
        return not oracle.check_program(
            candidate, input_seed_base=input_seed_base
        ).ok

    if not still_failing(program):  # non-reproducible; keep the original
        return None
    shrunk, _ = shrink_program(program, still_failing)
    return shrunk


def run_campaign(
    config: CampaignConfig,
    corpus: Optional[Corpus] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> CampaignResult:
    """Run one campaign to completion and return aggregated results.

    Multi-worker runs recover from worker crashes and hangs via leased
    batches with bounded retry (:mod:`repro.fuzz.resilience`); a batch
    that keeps failing is quarantined (counted on the stats) rather than
    hanging the campaign.
    """
    corpus = corpus if corpus is not None else Corpus()
    stats = CampaignStats(budget=config.budget)
    started = time.perf_counter()

    # Workers get the config once (initializer), work items are bare
    # indices — a budget-size stream of pickled configs was pure
    # serialization overhead.
    indices = range(config.budget)
    if config.workers > 1:
        lease_out = run_leased_batches(
            batch_indices(indices, config.workers),
            _fuzz_index_batch,
            config.workers,
            initializer=_set_worker_config,
            initargs=(config, _obs.worker_init_state()),
            policy=retry_policy or RetryPolicy(),
        )
        results = lease_out.results
        stats.retries = lease_out.retries
        stats.quarantined = len(lease_out.quarantined)
    else:
        _set_worker_config(config)
        results = [_fuzz_index(index) for index in indices]

    # Aggregate in index order so reports are stable across worker counts.
    results.sort(key=lambda r: r["index"])
    if _obs.enabled():
        registry = _obs.default_registry()
        for res in results:
            shard = res.pop("obs", None)
            if shard is not None:
                registry.merge_dict(shard)
    for res in results:
        stats.executed += 1
        stats.containment_checks += res["checks"]
        if res["verdict"] == "accepted":
            stats.accepted += 1
        else:
            stats.rejected += 1
            if res["rejected_but_clean"]:
                stats.rejected_clean += 1
        if res["violations"]:
            stats.violations += len(res["violations"])
            shrunk = (
                shrink_violation(config, res["bytecode_hex"], res["seed"])
                if config.shrink
                else None
            )
            corpus.add_violation(
                Program.from_bytes(bytes.fromhex(res["bytecode_hex"])),
                seed=res["seed"],
                profile=config.profile,
                violation=res["violations"][0],
                shrunk=shrunk,
                note=f"index {res['index']}",
            )
        elif "bytecode_hex" in res:
            corpus.add_interesting(
                Program.from_bytes(bytes.fromhex(res["bytecode_hex"])),
                seed=res["seed"],
                profile=config.profile,
                note=f"index {res['index']}",
            )

    stats.elapsed_seconds = time.perf_counter() - started
    _obs.publish_heartbeat({
        "phase": "fuzz",
        "budget": config.budget,
        "executed": stats.executed,
        "violations": stats.violations,
        "retries": stats.retries,
        "quarantined": stats.quarantined,
        "corpus_size": len(corpus),
        "elapsed_s": round(stats.elapsed_seconds, 3),
        "programs_per_s": round(stats.programs_per_second, 1),
    }, force=True)
    return CampaignResult(stats, corpus)
