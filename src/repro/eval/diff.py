"""Campaign precision diffs: compare two :class:`PrecisionReport` runs.

The campaign telemetry (:mod:`repro.eval.precision`) is deterministic for
a fixed seed, so two reports — a committed baseline and a fresh run on
the current tree — are directly comparable operator by operator.  This
module computes that comparison and renders it as the per-operator delta
table used both as PR acceptance evidence and as the CI
``precision-gate``: the gate fails when the new run shows any soundness
violation, or when total tightness mass (summed per-operator
``imprecision_mass``, i.e. tightness bits plus the priced-in
rejected-but-clean events) regresses by more than a configured fraction.

Regression is directional: *more* mass means *less* precision.  Large
negative deltas are improvements and never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .precision import PrecisionReport

__all__ = [
    "OperatorDelta",
    "PrecisionDiff",
    "diff_reports",
    "render_diff",
    "render_diff_markdown",
]


@dataclass(frozen=True)
class OperatorDelta:
    """Before/after telemetry for one operator label."""

    op: str
    base_occurrences: int
    new_occurrences: int
    base_tightness: int
    new_tightness: int
    base_rejected_clean: int
    new_rejected_clean: int
    base_mass: int
    new_mass: int

    @property
    def mass_delta(self) -> int:
        return self.new_mass - self.base_mass

    @property
    def tightness_delta(self) -> int:
        return self.new_tightness - self.base_tightness

    @property
    def rejected_clean_delta(self) -> int:
        return self.new_rejected_clean - self.base_rejected_clean


@dataclass
class PrecisionDiff:
    """The full comparison of a baseline report against a new one."""

    base_programs: int
    new_programs: int
    base_violations: int
    new_violations: int
    base_rejected_clean: int
    new_rejected_clean: int
    base_mass: int
    new_mass: int
    #: per-operator deltas, biggest absolute mass movement first
    operators: List[OperatorDelta] = field(default_factory=list)

    @property
    def mass_delta(self) -> int:
        return self.new_mass - self.base_mass

    @property
    def mass_regression(self) -> float:
        """Fractional tightness-mass change; positive means regression.

        A zero-mass baseline regresses only if the new run has mass at
        all (reported as +inf so any threshold trips).
        """
        if self.base_mass == 0:
            return float("inf") if self.new_mass > 0 else 0.0
        return self.mass_delta / self.base_mass

    def gate_failures(self, max_regression: float = 0.05) -> List[str]:
        """Reasons the precision gate fails; empty means it passes."""
        failures = []
        if self.new_violations > 0:
            failures.append(
                f"{self.new_violations} soundness violation(s) in the "
                f"new run (baseline had {self.base_violations})"
            )
        if self.mass_regression > max_regression:
            failures.append(
                f"total tightness mass regressed "
                f"{100.0 * self.mass_regression:.1f}% "
                f"({self.base_mass} -> {self.new_mass} bits; "
                f"limit {100.0 * max_regression:.1f}%)"
            )
        return failures


def diff_reports(base: PrecisionReport, new: PrecisionReport) -> PrecisionDiff:
    """Compare two precision reports operator by operator.

    Operators missing from one side diff against zeroed stats — a new
    operator label contributes its whole mass as a delta, a vanished one
    contributes its negation.
    """
    deltas = []
    for op in sorted(set(base.operators) | set(new.operators)):
        b = base.operators.get(op)
        n = new.operators.get(op)
        deltas.append(
            OperatorDelta(
                op=op,
                base_occurrences=b.occurrences if b else 0,
                new_occurrences=n.occurrences if n else 0,
                base_tightness=b.tightness_sum if b else 0,
                new_tightness=n.tightness_sum if n else 0,
                base_rejected_clean=b.rejected_clean if b else 0,
                new_rejected_clean=n.rejected_clean if n else 0,
                base_mass=b.imprecision_mass if b else 0,
                new_mass=n.imprecision_mass if n else 0,
            )
        )
    deltas.sort(key=lambda d: (-abs(d.mass_delta), d.op))
    return PrecisionDiff(
        base_programs=base.programs,
        new_programs=new.programs,
        base_violations=base.violations,
        new_violations=new.violations,
        base_rejected_clean=base.rejected_clean,
        new_rejected_clean=new.rejected_clean,
        base_mass=sum(s.imprecision_mass for s in base.operators.values()),
        new_mass=sum(s.imprecision_mass for s in new.operators.values()),
        operators=deltas,
    )


def _pct(diff: PrecisionDiff) -> str:
    if diff.base_mass == 0:
        return "n/a" if diff.new_mass == 0 else "+inf"
    return f"{100.0 * diff.mass_regression:+.1f}%"


def render_diff(diff: PrecisionDiff, top: int = 15) -> str:
    """The delta table as terminal text, biggest movers first."""
    header = (
        f"{'operator':>14} | {'obs':>9} | {'tight Σ Δ':>9} | "
        f"{'rej-clean Δ':>11} | {'mass':>13} | {'Δ mass':>7}"
    )
    lines = [
        f"precision diff: {diff.base_programs} -> {diff.new_programs} "
        f"programs, violations {diff.base_violations} -> "
        f"{diff.new_violations}, rejected-but-clean "
        f"{diff.base_rejected_clean} -> {diff.new_rejected_clean}",
        f"total tightness mass: {diff.base_mass} -> {diff.new_mass} bits "
        f"({_pct(diff)})",
        header,
        "-" * len(header),
    ]
    for d in diff.operators[:top]:
        lines.append(
            f"{d.op:>14} | {d.base_occurrences:>4}/{d.new_occurrences:<4} | "
            f"{d.tightness_delta:>+9} | {d.rejected_clean_delta:>+11} | "
            f"{d.base_mass:>6}/{d.new_mass:<6} | {d.mass_delta:>+7}"
        )
    return "\n".join(lines)


def render_diff_markdown(diff: PrecisionDiff, top: int = 15) -> str:
    """The delta table as markdown (CI artifact)."""
    lines = [
        "# Campaign precision diff",
        "",
        f"- programs: {diff.base_programs} (baseline) vs "
        f"{diff.new_programs} (new)",
        f"- soundness violations: {diff.base_violations} -> "
        f"**{diff.new_violations}**",
        f"- rejected-but-clean: {diff.base_rejected_clean} -> "
        f"**{diff.new_rejected_clean}**",
        f"- total tightness mass: {diff.base_mass} -> "
        f"**{diff.new_mass}** bits ({_pct(diff)})",
        "",
        "## Per-operator deltas (biggest movers first)",
        "",
        "| operator | obs (base/new) | tightness Σ Δ | rejected-clean Δ | "
        "mass (base/new) | mass Δ |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for d in diff.operators[:top]:
        lines.append(
            f"| `{d.op}` | {d.base_occurrences}/{d.new_occurrences} | "
            f"{d.tightness_delta:+} | {d.rejected_clean_delta:+} | "
            f"{d.base_mass}/{d.new_mass} | {d.mass_delta:+} |"
        )
    return "\n".join(lines)
