"""Evaluation harnesses reproducing §IV: precision (Fig. 4, Table I) and
performance (Fig. 5), plus text renderers for paper-style output."""

from .diff import (
    OperatorDelta,
    PrecisionDiff,
    diff_reports,
    render_diff,
    render_diff_markdown,
)
from .performance import (
    BENCH_PROFILES,
    PERF_ALGORITHMS,
    ThroughputReport,
    TimingResult,
    generate_pairs,
    measure_fuzz_throughput,
    speedup_summary,
    time_algorithms,
)
from .precision import (
    MUL_ALGORITHMS,
    REJECT_COST_BITS,
    OperatorStats,
    PrecisionComparison,
    PrecisionReport,
    TrendRow,
    compare_precision,
    gamma_bits,
    precision_cdf,
    precision_trend,
)
from .report import (
    render_cdf_ascii,
    render_comparison,
    render_fig4,
    render_fig5,
    render_precision_markdown,
    render_precision_report,
    render_table1,
)
from .stats import cdf_points, log2_ratio, percentile, summarize

__all__ = [
    "compare_precision",
    "precision_cdf",
    "precision_trend",
    "PrecisionComparison",
    "TrendRow",
    "MUL_ALGORITHMS",
    "time_algorithms",
    "generate_pairs",
    "speedup_summary",
    "TimingResult",
    "PERF_ALGORITHMS",
    "ThroughputReport",
    "measure_fuzz_throughput",
    "BENCH_PROFILES",
    "OperatorStats",
    "PrecisionReport",
    "REJECT_COST_BITS",
    "gamma_bits",
    "OperatorDelta",
    "PrecisionDiff",
    "diff_reports",
    "render_diff",
    "render_diff_markdown",
    "render_table1",
    "render_fig4",
    "render_fig5",
    "render_cdf_ascii",
    "render_comparison",
    "render_precision_report",
    "render_precision_markdown",
    "cdf_points",
    "percentile",
    "summarize",
    "log2_ratio",
]
