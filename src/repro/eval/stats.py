"""Small statistics helpers for the evaluation harnesses.

CDF construction and percentile summaries used when rendering the paper's
Figure 4 (precision-ratio CDF) and Figure 5 (cycle-count CDF).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["cdf_points", "percentile", "summarize", "log2_ratio"]


def cdf_points(values: Sequence[float], max_points: int = 200) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs, downsampled to ``max_points``."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    step = max(1, n // max_points)
    for i in range(0, n, step):
        points.append((ordered[i], (i + 1) / n))
    # Close the curve on the cumulative *fraction*, not the value: with a
    # duplicated maximum the last sampled point can already carry the max
    # value at a fraction < 1.0, and a value-based test would leave the
    # CDF terminating below 1 (Figure 4/5 renders would look truncated).
    if points[-1][1] != 1.0:
        points.append((ordered[-1], 1.0))
    return points


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean plus the percentiles the paper quotes."""
    if not values:
        raise ValueError("empty sample")
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "min": min(values),
        "p25": percentile(values, 25),
        "p50": percentile(values, 50),
        "p75": percentile(values, 75),
        "p99": percentile(values, 99),
        "max": max(values),
    }


def log2_ratio(numerator: int, denominator: int) -> float:
    """log2(numerator/denominator); Figure 4's x-axis unit.

    Each unit step corresponds to exactly one extra unknown trit in the
    less precise output.
    """
    if numerator <= 0 or denominator <= 0:
        raise ValueError("ratios require positive cardinalities")
    return math.log2(numerator / denominator)
