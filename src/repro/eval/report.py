"""Text rendering of the paper's tables and figures.

Produces paper-style artifacts on stdout: Table I rows with the same
columns, ASCII CDFs standing in for Figures 4 and 5, and verification
summaries for the §III-A table.  Benchmarks tee these into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .performance import TimingResult
from .precision import PrecisionComparison, PrecisionReport, TrendRow

__all__ = [
    "render_table1",
    "render_cdf_ascii",
    "render_fig4",
    "render_fig5",
    "render_comparison",
    "render_precision_report",
    "render_precision_markdown",
]


def render_table1(rows: Sequence[TrendRow]) -> str:
    """Table I with the paper's columns."""
    header = (
        f"{'bitwidth':>8} | {'total pairs':>12} | {'equal %':>8} | "
        f"{'differ %':>8} | {'comparable %':>12} | {'kern more %':>11} | "
        f"{'our more %':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.width:>8} | {row.total_pairs:>12} | {row.equal_pct:>8.3f} | "
            f"{row.different_pct:>8.3f} | {row.comparable_pct:>12.3f} | "
            f"{row.kern_pct:>11.3f} | {row.our_pct:>10.3f}"
        )
    return "\n".join(lines)


def render_cdf_ascii(
    points: Sequence[Tuple[float, float]],
    title: str,
    width: int = 60,
    height: int = 16,
    x_label: str = "",
) -> str:
    """A terminal CDF plot (x: value, y: cumulative fraction)."""
    if not points:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in points]
    lo, hi = min(xs), max(xs)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, frac in points:
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - frac) * (height - 1)))
        grid[row][col] = "*"
    lines = [title]
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:>5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    lines.append(f"{'':6}{lo:<12.3g}{'':{max(0, width - 24)}}{hi:>12.3g}")
    if x_label:
        lines.append(f"{'':6}{x_label:^{width}}")
    return "\n".join(lines)


def render_fig4(
    comparisons: Dict[str, Sequence[Tuple[float, float]]], width_bits: int
) -> str:
    """Figure 4: precision-ratio CDFs, one per pairing."""
    sections = [
        f"Figure 4 reproduction (bitwidth {width_bits}): CDF of "
        "log2(|γ(other)|/|γ(our_mul)|) over differing outputs"
    ]
    for name, points in comparisons.items():
        sections.append("")
        sections.append(
            render_cdf_ascii(
                points,
                f"  ({name}) vs our_mul",
                x_label="log2 set-size ratio (right of 0 → our_mul more precise)",
            )
        )
    return "\n".join(sections)


def render_fig5(results: Dict[str, TimingResult]) -> str:
    """Figure 5: per-algorithm timing CDFs plus the summary table."""
    sections = ["Figure 5 reproduction: CDF of per-multiply time (ns, min of trials)"]
    for name, result in results.items():
        sections.append("")
        sections.append(
            render_cdf_ascii(result.cdf(), f"  {name}", x_label="nanoseconds")
        )
    sections.append("")
    sections.append(f"{'algorithm':>20} | {'mean ns':>10} | {'p50':>8} | {'p99':>8}")
    sections.append("-" * 56)
    for name, result in results.items():
        s = result.summary()
        sections.append(
            f"{name:>20} | {s['mean']:>10.0f} | {s['p50']:>8.0f} | {s['p99']:>8.0f}"
        )
    return "\n".join(sections)


def render_precision_report(report: PrecisionReport, top: int = 10) -> str:
    """Campaign telemetry as a terminal table, worst operators first."""
    header = (
        f"{'operator':>14} | {'obs':>7} | {'mean γ bits':>11} | "
        f"{'tight Σ':>8} | {'tight max':>9} | {'rej':>5} | "
        f"{'rej-clean':>9} | {'mass':>8}"
    )
    lines = [
        f"per-operator imprecision over {report.programs} programs "
        f"({report.accepted} accepted, {report.rejected} rejected, "
        f"{report.rejected_clean} rejected-but-clean, "
        f"{report.mutants} mutants)",
        header,
        "-" * len(header),
    ]
    for stats in report.ranked()[:top]:
        lines.append(
            f"{stats.op:>14} | {stats.occurrences:>7} | "
            f"{stats.mean_gamma_bits:>11.2f} | {stats.tightness_sum:>8} | "
            f"{stats.tightness_max:>9} | {stats.rejections:>5} | "
            f"{stats.rejected_clean:>9} | {stats.imprecision_mass:>8}"
        )
    return "\n".join(lines)


def render_precision_markdown(report: PrecisionReport, top: int = 10) -> str:
    """Campaign telemetry as a markdown report (CI artifact)."""
    lines = [
        "# Campaign precision report",
        "",
        f"- programs: **{report.programs}** "
        f"({report.accepted} accepted / {report.rejected} rejected)",
        f"- rejected-but-clean (false positives): "
        f"**{report.rejected_clean}**",
        f"- mutants fuzzed: **{report.mutants}**",
        f"- soundness violations: **{report.violations}**",
        "",
        "## Operators by imprecision mass",
        "",
        "| operator | observations | mean γ bits | tightness Σ bits | "
        "tightness max | rejections | rejected-clean | mass |",
        "|---|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for stats in report.ranked()[:top]:
        lines.append(
            f"| `{stats.op}` | {stats.occurrences} | "
            f"{stats.mean_gamma_bits:.2f} | {stats.tightness_sum} | "
            f"{stats.tightness_max} | {stats.rejections} | "
            f"{stats.rejected_clean} | {stats.imprecision_mass} |"
        )
    return "\n".join(lines)


def render_comparison(comparison: PrecisionComparison) -> str:
    """One pairing's headline numbers (§IV.A prose)."""
    c = comparison
    lines = [
        f"{c.name_a} vs {c.name_b} @ width {c.width}: "
        f"{c.total_pairs} pairs",
        f"  equal outputs:      {c.equal} ({c.pct(c.equal):.3f}%)",
        f"  differing outputs:  {c.different} ({c.pct(c.different):.3f}%)",
    ]
    if c.different:
        lines += [
            f"  comparable:         {c.comparable} "
            f"({100.0 * c.comparable / c.different:.3f}% of differing)",
            f"  {c.name_a} more precise: {c.a_more_precise} "
            f"({100.0 * c.a_more_precise / max(c.comparable, 1):.3f}% of comparable)",
            f"  {c.name_b} more precise: {c.b_more_precise} "
            f"({100.0 * c.b_more_precise / max(c.comparable, 1):.3f}% of comparable)",
        ]
    return "\n".join(lines)
