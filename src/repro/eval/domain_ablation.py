"""Ablation: tnum alone vs interval alone vs the reduced product.

DESIGN.md calls out measuring what the verifier's *combination* of
domains buys over each domain individually.  This harness evaluates all
three abstractions over random expression DAGs (the shapes BPF scalar
code produces: masks, adds, shifts, subtractions, branches' ranges) and
scores each by the cardinality of its final abstract value — smaller is
more precise — always checking soundness against concrete evaluation.

The expected result, and what the benchmark asserts: the reduced product
is never worse than either component and strictly better on a large
fraction of expressions — bitwise-heavy expressions favour the tnum,
range-heavy ones favour the interval, and mixtures need both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.tnum import Tnum, mask_for_width
from repro.core import (
    our_mul,
    tnum_add,
    tnum_and,
    tnum_lshift,
    tnum_or,
    tnum_rshift,
    tnum_sub,
    tnum_xor,
)
from repro.domains.interval import Interval
from repro.domains.product import ScalarValue

__all__ = ["Expression", "random_expression", "evaluate_domains", "ablation_study"]

U64 = mask_for_width(64)

# Each op: (name, concrete, tnum transformer, interval transformer,
# product transformer). Interval bitwise ops fall back to top (that
# domain simply cannot express them) — which is the point of the study.
_OPS = ("add", "sub", "mul", "and", "or", "xor", "lsh", "rsh")


@dataclass
class Expression:
    """A little expression DAG: leaves are ctx bytes or constants."""

    kind: str                      # "leaf_input" | "leaf_const" | op name
    value: int = 0                 # const value or input index
    left: Optional["Expression"] = None
    right: Optional["Expression"] = None

    def concrete(self, inputs: List[int]) -> int:
        if self.kind == "leaf_input":
            return inputs[self.value]
        if self.kind == "leaf_const":
            return self.value
        x = self.left.concrete(inputs)
        y = self.right.concrete(inputs)
        if self.kind == "add":
            return (x + y) & U64
        if self.kind == "sub":
            return (x - y) & U64
        if self.kind == "mul":
            return (x * y) & U64
        if self.kind == "and":
            return x & y
        if self.kind == "or":
            return x | y
        if self.kind == "xor":
            return x ^ y
        if self.kind == "lsh":
            return (x << (y & 7)) & U64
        if self.kind == "rsh":
            return x >> (y & 7)
        raise ValueError(self.kind)

    def size(self) -> int:
        if self.kind.startswith("leaf"):
            return 1
        return 1 + self.left.size() + self.right.size()


def random_expression(
    rng: random.Random, depth: int = 4, num_inputs: int = 2
) -> Expression:
    """A random expression over byte-valued inputs and small constants."""
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.5:
            return Expression("leaf_input", rng.randrange(num_inputs))
        return Expression("leaf_const", rng.choice(
            [0, 1, 3, 7, 8, 15, 16, 0xFF, 0xF0, 100]
        ))
    op = rng.choice(_OPS)
    left = random_expression(rng, depth - 1, num_inputs)
    if op in ("lsh", "rsh"):
        right = Expression("leaf_const", rng.randrange(8))
    else:
        right = random_expression(rng, depth - 1, num_inputs)
    return Expression(op, left=left, right=right)


def _eval_tnum(expr: Expression, inputs: List[Tnum]) -> Tnum:
    if expr.kind == "leaf_input":
        return inputs[expr.value]
    if expr.kind == "leaf_const":
        return Tnum.const(expr.value, 64)
    x = _eval_tnum(expr.left, inputs)
    y = _eval_tnum(expr.right, inputs)
    table = {
        "add": tnum_add, "sub": tnum_sub, "mul": our_mul,
        "and": tnum_and, "or": tnum_or, "xor": tnum_xor,
    }
    if expr.kind in table:
        return table[expr.kind](x, y)
    amount = expr.right.value & 7
    return (tnum_lshift if expr.kind == "lsh" else tnum_rshift)(x, amount)


def _eval_interval(expr: Expression, inputs: List[Interval]) -> Interval:
    if expr.kind == "leaf_input":
        return inputs[expr.value]
    if expr.kind == "leaf_const":
        return Interval.const(expr.value, 64)
    x = _eval_interval(expr.left, inputs)
    y = _eval_interval(expr.right, inputs)
    if expr.kind == "add":
        return x.add(y)
    if expr.kind == "sub":
        return x.sub(y)
    if expr.kind == "mul":
        return x.mul(y)
    if expr.kind in ("and", "or", "xor"):
        return Interval.top(64)  # pure ranges cannot track bit ops
    amount = expr.right.value & 7
    if expr.kind == "lsh":
        hi = x.umax << amount
        if x.is_bottom() or hi > U64:
            return Interval.top(64)
        return Interval(x.umin << amount, hi, 64)
    if x.is_bottom():
        return x
    return Interval(x.umin >> amount, x.umax >> amount, 64)


def _eval_product(expr: Expression, inputs: List[ScalarValue]) -> ScalarValue:
    if expr.kind == "leaf_input":
        return inputs[expr.value]
    if expr.kind == "leaf_const":
        return ScalarValue.const(expr.value)
    x = _eval_product(expr.left, inputs)
    y = _eval_product(expr.right, inputs)
    table = {
        "add": ScalarValue.add, "sub": ScalarValue.sub,
        "mul": ScalarValue.mul, "and": ScalarValue.and_,
        "or": ScalarValue.or_, "xor": ScalarValue.xor,
    }
    if expr.kind in table:
        return table[expr.kind](x, y)
    amount = expr.right.value & 7
    return (x.lshift if expr.kind == "lsh" else x.rshift)(amount)


def _product_cardinality(sv: ScalarValue) -> int:
    """Upper bound on |γ| of the product: min of the component counts."""
    return min(sv.tnum.cardinality(), sv.interval.cardinality())


@dataclass
class AblationResult:
    """Aggregate outcome over many random expressions."""

    expressions: int = 0
    product_vs_tnum_wins: int = 0        # product strictly smaller
    product_vs_interval_wins: int = 0
    tnum_vs_interval_wins: int = 0
    interval_vs_tnum_wins: int = 0
    unsound: int = 0
    mean_log2: Dict[str, float] = field(default_factory=dict)


def evaluate_domains(
    expr: Expression, rng: random.Random
) -> Tuple[int, int, int, bool]:
    """(tnum card, interval card, product card, sound) for one expression.

    Inputs are abstract "ctx bytes" ([0, 255]); soundness is checked by
    concretely evaluating on random input samples.
    """
    byte_t = Tnum(0, 0xFF, 64)
    byte_iv = Interval(0, 0xFF, 64)
    byte_sv = ScalarValue.make(byte_t, byte_iv)

    t = _eval_tnum(expr, [byte_t, byte_t])
    iv = _eval_interval(expr, [byte_iv, byte_iv])
    sv = _eval_product(expr, [byte_sv, byte_sv])

    sound = True
    for _ in range(16):
        inputs = [rng.randrange(256), rng.randrange(256)]
        concrete = expr.concrete(inputs)
        if not t.contains(concrete):
            sound = False
        if not iv.contains(concrete):
            sound = False
        if not sv.contains(concrete):
            sound = False
    return (
        t.cardinality(),
        iv.cardinality(),
        _product_cardinality(sv),
        sound,
    )


def ablation_study(
    count: int = 300, seed: int = 0, depth: int = 4
) -> AblationResult:
    """Run the full study over ``count`` random expressions."""
    import math

    rng = random.Random(seed)
    result = AblationResult()
    logs = {"tnum": 0.0, "interval": 0.0, "product": 0.0}
    for _ in range(count):
        expr = random_expression(rng, depth=depth)
        t_card, iv_card, sv_card, sound = evaluate_domains(expr, rng)
        result.expressions += 1
        if not sound:
            result.unsound += 1
            continue
        if sv_card < t_card:
            result.product_vs_tnum_wins += 1
        if sv_card < iv_card:
            result.product_vs_interval_wins += 1
        if t_card < iv_card:
            result.tnum_vs_interval_wins += 1
        elif iv_card < t_card:
            result.interval_vs_tnum_wins += 1
        logs["tnum"] += math.log2(max(t_card, 1))
        logs["interval"] += math.log2(max(iv_card, 1))
        logs["product"] += math.log2(max(sv_card, 1))
    result.mean_log2 = {
        name: total / max(result.expressions - result.unsound, 1)
        for name, total in logs.items()
    }
    return result
