"""Performance evaluation: Figure 5 of the paper.

The paper times 40 million random 64-bit tnum pairs with RDTSC, taking
the minimum of 10 trials per pair, and reports the CDF of cycles for
``kern_mul``, (optimized) ``bitwise_mul``, and ``our_mul``; headline:
our_mul averages 262 cycles vs 393 (kern) and 387 (bitwise) — 33% / 32%
faster — and the *naive* bitwise_mul costs ~4921 cycles.

Substitution (see DESIGN.md): RDTSC → ``time.perf_counter_ns``; sample
counts default far below 40M because pure Python is ~100× slower per
multiply.  Relative ordering and CDF shape — who is fastest, by roughly
what factor — are the reproduction targets.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import bitwise_mul_naive, bitwise_mul_opt, kern_mul
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum
from repro.verify.random_check import random_tnum

from .stats import cdf_points, summarize

__all__ = [
    "TimingResult",
    "time_algorithms",
    "generate_pairs",
    "PERF_ALGORITHMS",
    "speedup_summary",
]

#: Algorithms timed in Fig. 5, plus the naive baseline quoted in §IV.B.
PERF_ALGORITHMS: Dict[str, Callable[[Tnum, Tnum], Tnum]] = {
    "kern_mul": kern_mul,
    "bitwise_mul": bitwise_mul_opt,
    "our_mul": our_mul,
}


def generate_pairs(
    count: int, width: int = 64, seed: int = 0
) -> List[Tuple[Tnum, Tnum]]:
    """Random well-formed 64-bit tnum pairs (the paper's workload)."""
    rng = random.Random(seed)
    return [(random_tnum(rng, width), random_tnum(rng, width)) for _ in range(count)]


@dataclass
class TimingResult:
    """Per-algorithm timing over a shared set of input pairs."""

    algorithm: str
    per_pair_ns: List[float] = field(default_factory=list)

    def cdf(self, max_points: int = 200) -> List[Tuple[float, float]]:
        return cdf_points(self.per_pair_ns, max_points)

    def summary(self) -> Dict[str, float]:
        return summarize(self.per_pair_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.per_pair_ns) / len(self.per_pair_ns)


def time_algorithms(
    pairs: Sequence[Tuple[Tnum, Tnum]],
    algorithms: Optional[Dict[str, Callable[[Tnum, Tnum], Tnum]]] = None,
    trials: int = 10,
    include_naive: bool = False,
) -> Dict[str, TimingResult]:
    """Time each algorithm on each pair; keep the min across ``trials``.

    Matches the paper's methodology (min of 10 trials per input pair).
    ``include_naive`` adds the un-optimized bitwise_mul, which the paper
    quotes separately (≈12.7× slower than its optimized form).
    """
    algos = dict(algorithms or PERF_ALGORITHMS)
    if include_naive:
        algos["bitwise_mul_naive"] = bitwise_mul_naive

    results = {name: TimingResult(name) for name in algos}
    clock = time.perf_counter_ns
    for p, q in pairs:
        for name, fn in algos.items():
            best = None
            for _ in range(trials):
                t0 = clock()
                fn(p, q)
                elapsed = clock() - t0
                if best is None or elapsed < best:
                    best = elapsed
            results[name].per_pair_ns.append(float(best))
    return results


def speedup_summary(results: Dict[str, TimingResult]) -> Dict[str, float]:
    """Mean-time speedup of our_mul over each other algorithm.

    The paper reports 33% (vs kern_mul) and 32% (vs optimized
    bitwise_mul); values here are ``1 - mean(our)/mean(other)``.
    """
    ours = results["our_mul"].mean_ns
    return {
        name: 1.0 - ours / result.mean_ns
        for name, result in results.items()
        if name != "our_mul"
    }
