"""Performance evaluation: Figure 5 of the paper, plus pipeline benchmarks.

The paper times 40 million random 64-bit tnum pairs with RDTSC, taking
the minimum of 10 trials per pair, and reports the CDF of cycles for
``kern_mul``, (optimized) ``bitwise_mul``, and ``our_mul``; headline:
our_mul averages 262 cycles vs 393 (kern) and 387 (bitwise) — 33% / 32%
faster — and the *naive* bitwise_mul costs ~4921 cycles.

Substitution (see DESIGN.md): RDTSC → ``time.perf_counter_ns``; sample
counts default far below 40M because pure Python is ~100× slower per
multiply.  Relative ordering and CDF shape — who is fastest, by roughly
what factor — are the reproduction targets.

Beyond the paper's operator microbenchmarks, this module measures the
*system-level* number the fuzzing ROADMAP tracks — differential-fuzz
pipeline throughput in programs/sec (:func:`measure_fuzz_throughput`).
The result serializes as a ``BENCH_*.json`` baseline
(:class:`ThroughputReport`) that CI diffs new runs against: machines
vary, so the diff is a warning channel (default tolerance 15%), not a
hard gate.
"""

from __future__ import annotations

import gc
import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import bitwise_mul_naive, bitwise_mul_opt, kern_mul
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum
from repro.verify.random_check import random_tnum

from .stats import cdf_points, summarize

__all__ = [
    "TimingResult",
    "time_algorithms",
    "generate_pairs",
    "PERF_ALGORITHMS",
    "speedup_summary",
    "ThroughputReport",
    "measure_fuzz_throughput",
    "measure_verifier_throughput",
    "BENCH_PROFILES",
]

#: Algorithms timed in Fig. 5, plus the naive baseline quoted in §IV.B.
PERF_ALGORITHMS: Dict[str, Callable[[Tnum, Tnum], Tnum]] = {
    "kern_mul": kern_mul,
    "bitwise_mul": bitwise_mul_opt,
    "our_mul": our_mul,
}


def generate_pairs(
    count: int, width: int = 64, seed: int = 0
) -> List[Tuple[Tnum, Tnum]]:
    """Random well-formed 64-bit tnum pairs (the paper's workload)."""
    rng = random.Random(seed)
    return [(random_tnum(rng, width), random_tnum(rng, width)) for _ in range(count)]


@dataclass
class TimingResult:
    """Per-algorithm timing over a shared set of input pairs."""

    algorithm: str
    per_pair_ns: List[float] = field(default_factory=list)

    def cdf(self, max_points: int = 200) -> List[Tuple[float, float]]:
        return cdf_points(self.per_pair_ns, max_points)

    def summary(self) -> Dict[str, float]:
        return summarize(self.per_pair_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.per_pair_ns) / len(self.per_pair_ns)


def time_algorithms(
    pairs: Sequence[Tuple[Tnum, Tnum]],
    algorithms: Optional[Dict[str, Callable[[Tnum, Tnum], Tnum]]] = None,
    trials: int = 10,
    include_naive: bool = False,
) -> Dict[str, TimingResult]:
    """Time each algorithm on each pair; keep the min across ``trials``.

    Matches the paper's methodology (min of 10 trials per input pair).
    ``include_naive`` adds the un-optimized bitwise_mul, which the paper
    quotes separately (≈12.7× slower than its optimized form).
    """
    algos = dict(algorithms or PERF_ALGORITHMS)
    if include_naive:
        algos["bitwise_mul_naive"] = bitwise_mul_naive

    results = {name: TimingResult(name) for name in algos}
    clock = time.perf_counter_ns
    for p, q in pairs:
        for name, fn in algos.items():
            best = None
            for _ in range(trials):
                t0 = clock()
                fn(p, q)
                elapsed = clock() - t0
                if best is None or elapsed < best:
                    best = elapsed
            results[name].per_pair_ns.append(float(best))
    return results


def speedup_summary(results: Dict[str, TimingResult]) -> Dict[str, float]:
    """Mean-time speedup of our_mul over each other algorithm.

    The paper reports 33% (vs kern_mul) and 32% (vs optimized
    bitwise_mul); values here are ``1 - mean(our)/mean(other)``.
    """
    ours = results["our_mul"].mean_ns
    return {
        name: 1.0 - ours / result.mean_ns
        for name, result in results.items()
        if name != "our_mul"
    }


# -- fuzz-pipeline throughput (repro bench) -----------------------------------

_THROUGHPUT_SCHEMA = 1

#: Opcode profiles measured per driver run.
BENCH_PROFILES = ("mixed", "alu", "memory", "branchy")


@dataclass
class ThroughputReport:
    """Measured fuzz-pipeline throughput, serializable as a baseline.

    ``metrics`` maps metric name to programs/sec: ``driver_<profile>``
    for the plain differential driver per opcode profile,
    ``verify_<profile>`` for the abstract verifier alone (compiled walk,
    cold per program: container construction, closure lookup, and the
    full abstract interpretation are all inside the timed region),
    ``verify_repeat`` for the verdict-cache hit path (canonical hash +
    cache lookup + telemetry replay on a warm
    :class:`~repro.bpf.canon.VerdictCache`, fresh ``Program`` containers
    each pass — the repeat-submission scenario), ``campaign_telemetry``
    for the precision campaign with telemetry but no feedback, and
    ``campaign_feedback`` for the full two-round mutation-feedback loop.
    Numbers are machine-dependent; comparisons are advisory.
    """

    budget: int
    seed: int
    repeats: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "schema_version": _THROUGHPUT_SCHEMA,
            "budget": self.budget,
            "seed": self.seed,
            "repeats": self.repeats,
            "metrics": {k: round(v, 1) for k, v in sorted(self.metrics.items())},
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ThroughputReport":
        payload = json.loads(text)
        version = payload.get("schema_version")
        if version != _THROUGHPUT_SCHEMA:
            raise ValueError(
                f"unsupported throughput baseline schema {version!r}"
            )
        return cls(
            budget=int(payload["budget"]),
            seed=int(payload["seed"]),
            repeats=int(payload["repeats"]),
            metrics={k: float(v) for k, v in payload["metrics"].items()},
        )

    def summary(self) -> str:
        lines = [
            f"Fuzz-pipeline throughput (budget {self.budget}, "
            f"seed {self.seed}, best of {self.repeats}):"
        ]
        for name in sorted(self.metrics):
            lines.append(f"  {name:<20}: {self.metrics[name]:8.1f} programs/sec")
        return "\n".join(lines)

    def compare(
        self, baseline: "ThroughputReport", max_regression: float = 0.15
    ) -> List[str]:
        """Advisory regression warnings against a saved baseline.

        Returns one message per metric that fell more than
        ``max_regression`` below the baseline.  Metrics missing from
        either side are skipped: a new metric has no baseline to
        regress from.
        """
        warnings = []
        for row in self.compare_rows(baseline, max_regression=max_regression):
            if row["status"] != "WARN":
                continue
            drop = -row["delta"]
            warnings.append(
                f"{row['metric']}: {row['current']:.1f} programs/sec is "
                f"{100 * drop:.1f}% below baseline {row['baseline']:.1f}"
            )
        return warnings

    def compare_rows(
        self, baseline: "ThroughputReport", max_regression: float = 0.15
    ) -> List[Dict[str, object]]:
        """The full per-metric diff, one row per metric in either report.

        Each row carries ``metric``, ``baseline``/``current``
        programs/sec (``None`` when absent on that side), the
        fractional ``delta`` (``current/baseline - 1``), and a
        ``status``: ``ok``, ``WARN`` (below baseline past
        ``max_regression``), ``new`` (no baseline), or ``missing``
        (baseline metric this run did not measure).
        """
        rows: List[Dict[str, object]] = []
        for name in sorted(set(self.metrics) | set(baseline.metrics)):
            new = self.metrics.get(name)
            old = baseline.metrics.get(name)
            delta: Optional[float] = None
            if new is None:
                status = "missing"
            elif old is None or old <= 0:
                status = "new"
            else:
                delta = new / old - 1.0
                status = "WARN" if -delta > max_regression else "ok"
            rows.append({
                "metric": name, "baseline": old, "current": new,
                "delta": delta, "status": status,
            })
        return rows

    def markdown_diff(
        self, baseline: "ThroughputReport", max_regression: float = 0.15
    ) -> str:
        """The baseline diff as a markdown table (CI step summaries)."""

        def _rate(value: Optional[float]) -> str:
            return f"{value:,.1f}" if value is not None else "—"

        lines = [
            "### Throughput vs committed baseline",
            "",
            f"Budget {self.budget}, seed {self.seed}, best of "
            f"{self.repeats} — programs/sec, advisory "
            f"(warns >{100 * max_regression:.0f}% below baseline).",
            "",
            "| metric | baseline | current | Δ | status |",
            "|---|---:|---:|---:|---|",
        ]
        for row in self.compare_rows(baseline, max_regression=max_regression):
            delta = row["delta"]
            delta_text = f"{100 * delta:+.1f}%" if delta is not None else "—"
            status = row["status"]
            status_text = "⚠️ WARN" if status == "WARN" else status
            lines.append(
                f"| `{row['metric']}` | {_rate(row['baseline'])} | "
                f"{_rate(row['current'])} | {delta_text} | {status_text} |"
            )
        return "\n".join(lines)


def _best_of(
    fn: Callable[[], object],
    repeats: int,
    observe: Optional[Callable[[float], None]] = None,
) -> float:
    best = None
    for _ in range(repeats):
        # Collect before each timed pass so one stage's garbage (the
        # campaign stages allocate heavily) cannot bill a later stage.
        gc.collect()
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if observe is not None:
            observe(elapsed)
        if best is None or elapsed < best:
            best = elapsed
    return best if best is not None else 0.0


def _stage_observer(
    stage_observer: Optional[Callable[[str, float], None]], stage: str
) -> Optional[Callable[[float], None]]:
    if stage_observer is None:
        return None
    return lambda seconds: stage_observer(stage, seconds)


def measure_verifier_throughput(
    budget: int = 200,
    seed: int = 42,
    repeats: int = 2,
    profiles: Sequence[str] = BENCH_PROFILES,
    stage_observer: Optional[Callable[[str, float], None]] = None,
) -> Dict[str, float]:
    """Measure the abstract verifier alone: ``verify_<profile>`` stages.

    Programs are pre-generated outside the timed region (generation is
    driver cost, not verifier cost), but each timed pass re-wraps the
    instruction lists in fresh :class:`~repro.bpf.program.Program`
    containers so every verification is *cold* — container maps, CFG,
    and compiled-closure lookups are all paid inside the measurement,
    exactly as the fuzz oracle pays them per generated program.
    """
    from repro.bpf.program import Program
    from repro.bpf.verifier import Verifier
    from repro.fuzz import generate_program
    from repro.fuzz.driver import program_seed

    metrics: Dict[str, float] = {}
    for profile in profiles:
        insn_lists = [
            list(generate_program(program_seed(seed, i), profile).program.insns)
            for i in range(budget)
        ]

        def run(lists=insn_lists) -> None:
            verifier = Verifier(ctx_size=64)
            for insns in lists:
                verifier.verify(Program(insns))

        metrics[f"verify_{profile}"] = budget / _best_of(
            run, repeats, observe=_stage_observer(
                stage_observer, f"verify_{profile}"
            )
        )

    # verify_repeat: the verdict-cache hit path on the first profile's
    # workload.  The cache is warmed outside the timed region; each
    # timed pass still wraps fresh Program containers, so it pays
    # canonicalization, hashing, lookup, and telemetry-stream replay —
    # everything a repeat submission pays — but never the abstract walk.
    # The ratio verify_repeat / verify_<profiles[0]> is the memoization
    # speedup the ISSUE's acceptance criteria track (>= 10x).
    from repro.bpf.canon import VerdictCache

    repeat_lists = [
        list(generate_program(program_seed(seed, i), profiles[0]).program.insns)
        for i in range(budget)
    ]
    cache = VerdictCache()
    warm = Verifier(ctx_size=64, verdict_cache=cache)
    for insns in repeat_lists:
        warm.verify(Program(insns))

    def run_repeat(lists=repeat_lists, cache=cache) -> None:
        verifier = Verifier(ctx_size=64, verdict_cache=cache)
        for insns in lists:
            verifier.verify(Program(insns))

    metrics["verify_repeat"] = budget / _best_of(
        run_repeat, repeats,
        observe=_stage_observer(stage_observer, "verify_repeat"),
    )
    return metrics


def measure_fuzz_throughput(
    budget: int = 200,
    seed: int = 42,
    repeats: int = 2,
    profiles: Sequence[str] = BENCH_PROFILES,
    campaign_budget: Optional[int] = None,
    stage_observer: Optional[Callable[[str, float], None]] = None,
) -> ThroughputReport:
    """Measure end-to-end pipeline throughput (programs/sec).

    Runs the plain differential driver per opcode profile, the abstract
    verifier alone per profile (``verify_<profile>``), the
    telemetry-only precision campaign, and the full mutation-feedback
    campaign, each ``repeats`` times keeping the best.  This is the
    workload behind ``repro bench`` and the committed
    ``benchmarks/baselines/BENCH_throughput.json``.

    ``stage_observer`` (optional) receives every individual timed pass
    as ``(stage_name, seconds)`` — ``repro bench --json`` feeds these
    into obs histograms for p50/p90/p99 per stage — without touching
    the best-of metrics or requiring observability to be enabled.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if budget < 1:
        raise ValueError("budget must be >= 1")
    # Imported lazily: repro.fuzz pulls in repro.eval.precision, so a
    # module-level import here would be circular.
    from repro.fuzz import (
        CampaignConfig,
        CampaignSpec,
        run_campaign,
        run_precision_campaign,
    )

    campaign_budget = budget if campaign_budget is None else campaign_budget
    metrics: Dict[str, float] = {}

    for profile in profiles:
        config = CampaignConfig(budget=budget, seed=seed, profile=profile)
        seconds = _best_of(
            lambda: run_campaign(config), repeats,
            observe=_stage_observer(stage_observer, f"driver_{profile}"),
        )
        metrics[f"driver_{profile}"] = budget / seconds

    metrics.update(
        measure_verifier_throughput(
            budget=budget, seed=seed, repeats=repeats, profiles=profiles,
            stage_observer=stage_observer,
        )
    )

    telemetry = CampaignSpec(
        budget=campaign_budget, rounds=1, seed=seed, mutate_fraction=0.0,
        seeds_per_round=0, seed_shrink_per_round=0,
    )
    seconds = _best_of(
        lambda: run_precision_campaign(telemetry), repeats,
        observe=_stage_observer(stage_observer, "campaign_telemetry"),
    )
    metrics["campaign_telemetry"] = campaign_budget / seconds

    feedback = CampaignSpec(budget=campaign_budget, rounds=2, seed=seed)
    seconds = _best_of(
        lambda: run_precision_campaign(feedback), repeats,
        observe=_stage_observer(stage_observer, "campaign_feedback"),
    )
    metrics["campaign_feedback"] = campaign_budget / seconds

    return ThroughputReport(
        budget=budget, seed=seed, repeats=repeats, metrics=metrics
    )
