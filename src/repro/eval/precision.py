"""Precision evaluation: Figure 4 and Table I of the paper.

Figure 4 compares, over every pair of width-n tnums where the outputs of
two multiplication algorithms differ, the ratio of concretized-set sizes
``|γ(R_other)| / |γ(R_our)|`` on a log2 axis.  Table I tracks, per width,
how often outputs are equal / different / comparable, and which algorithm
is more precise when they differ.

The paper runs n=8 for Figure 4 and n=5..10 for Table I on a 20-core
Skylake; pure Python is ~two orders of magnitude slower, so the default
widths here are smaller (the trends in the paper's own Table I are stable
across widths — see DESIGN.md's substitution notes).  All entry points
take a ``width`` argument, so the paper's exact configuration can be
requested when time permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.baselines import bitwise_mul_opt, kern_mul
from repro.core.lattice import enumerate_tnums, leq
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum

from .stats import cdf_points, log2_ratio

__all__ = [
    "PrecisionComparison",
    "TrendRow",
    "compare_precision",
    "precision_cdf",
    "precision_trend",
    "MUL_ALGORITHMS",
]

MulFn = Callable[[Tnum, Tnum], Tnum]

#: The three multiplication algorithms of §IV.
MUL_ALGORITHMS: Dict[str, MulFn] = {
    "our_mul": our_mul,
    "kern_mul": kern_mul,
    "bitwise_mul": bitwise_mul_opt,
}


@dataclass
class PrecisionComparison:
    """Pairwise precision comparison of two algorithms at one width.

    Field names follow Table I's columns.
    """

    name_a: str
    name_b: str
    width: int
    total_pairs: int = 0
    equal: int = 0
    different: int = 0
    comparable: int = 0
    a_more_precise: int = 0
    b_more_precise: int = 0
    #: log2(|γ(R_b)| / |γ(R_a)|) for every differing-comparable pair —
    #: positive values mean algorithm A won (Figure 4's x-axis).
    log2_ratios: List[float] = field(default_factory=list)

    def pct(self, count: int, base: Optional[int] = None) -> float:
        base = base if base is not None else self.total_pairs
        return 100.0 * count / base if base else 0.0


def compare_precision(
    name_a: str,
    name_b: str,
    width: int,
    pairs: Optional[Iterable[Tuple[Tnum, Tnum]]] = None,
) -> PrecisionComparison:
    """Run algorithm A and B over tnum pairs and tally Table-I statistics.

    ``pairs`` defaults to *all* pairs at ``width`` (the paper's setup);
    pass a sample for quicker runs at large widths.
    """
    fn_a = MUL_ALGORITHMS[name_a]
    fn_b = MUL_ALGORITHMS[name_b]
    result = PrecisionComparison(name_a, name_b, width)

    if pairs is None:
        tnums = enumerate_tnums(width)
        pairs = ((p, q) for p in tnums for q in tnums)

    for p, q in pairs:
        result.total_pairs += 1
        ra = fn_a(p, q)
        rb = fn_b(p, q)
        if ra == rb:
            result.equal += 1
            continue
        result.different += 1
        a_le = leq(ra, rb)
        b_le = leq(rb, ra)
        if not (a_le or b_le):
            continue  # incomparable (appears only at width >= 9, per paper)
        result.comparable += 1
        if a_le:
            result.a_more_precise += 1
        else:
            result.b_more_precise += 1
        result.log2_ratios.append(
            log2_ratio(rb.cardinality(), ra.cardinality())
        )
    return result


def precision_cdf(
    comparison: PrecisionComparison, max_points: int = 200
) -> List[Tuple[float, float]]:
    """Figure 4's CDF series for one algorithm pairing."""
    return cdf_points(comparison.log2_ratios, max_points)


@dataclass
class TrendRow:
    """One row of Table I."""

    width: int
    total_pairs: int
    equal: int
    different: int
    comparable: int
    kern_more_precise: int
    our_more_precise: int

    @property
    def equal_pct(self) -> float:
        return 100.0 * self.equal / self.total_pairs

    @property
    def different_pct(self) -> float:
        return 100.0 * self.different / self.total_pairs

    @property
    def comparable_pct(self) -> float:
        return 100.0 * self.comparable / self.different if self.different else 100.0

    @property
    def kern_pct(self) -> float:
        return 100.0 * self.kern_more_precise / self.comparable if self.comparable else 0.0

    @property
    def our_pct(self) -> float:
        return 100.0 * self.our_more_precise / self.comparable if self.comparable else 0.0


def precision_trend(widths: Iterable[int]) -> List[TrendRow]:
    """Table I: our_mul vs kern_mul across widths."""
    rows: List[TrendRow] = []
    for width in widths:
        cmp_result = compare_precision("our_mul", "kern_mul", width)
        rows.append(
            TrendRow(
                width=width,
                total_pairs=cmp_result.total_pairs,
                equal=cmp_result.equal,
                different=cmp_result.different,
                comparable=cmp_result.comparable,
                kern_more_precise=cmp_result.b_more_precise,
                our_more_precise=cmp_result.a_more_precise,
            )
        )
    return rows
