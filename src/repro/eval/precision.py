"""Precision evaluation: Figure 4 / Table I, plus campaign telemetry.

Figure 4 compares, over every pair of width-n tnums where the outputs of
two multiplication algorithms differ, the ratio of concretized-set sizes
``|γ(R_other)| / |γ(R_our)|`` on a log2 axis.  Table I tracks, per width,
how often outputs are equal / different / comparable, and which algorithm
is more precise when they differ.

The paper runs n=8 for Figure 4 and n=5..10 for Table I on a 20-core
Skylake; pure Python is ~two orders of magnitude slower, so the default
widths here are smaller (the trends in the paper's own Table I are stable
across widths — see DESIGN.md's substitution notes).  All entry points
take a ``width`` argument, so the paper's exact configuration can be
requested when time permits.

:class:`PrecisionReport` extends the same question — *which transfer
function loses precision?* — from enumerated operator pairs to whole
fuzzed programs.  A campaign (:mod:`repro.fuzz.campaign`) attributes
three observations to each operator label:

* **rejected-but-clean rate** — rejections at an instruction applying
  the operator whose concrete replay ran fine (false positives);
* **γ-size histogram** — bits of abstract width (γ cardinality, log2)
  of every abstract result the operator produced;
* **tightness delta** — bits of slack between the operator's abstract
  interval and the concrete range actually observed across replays.

Operators are ranked by *imprecision mass*: total tightness-delta bits
plus :data:`REJECT_COST_BITS` bits per rejected-but-clean event.  All
counters are integers and shards merge in index order, so merged report
JSON is byte-identical regardless of worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.baselines import bitwise_mul_opt, kern_mul
from repro.core.lattice import enumerate_tnums, leq
from repro.core.multiply import our_mul
from repro.core.tnum import Tnum

from .stats import cdf_points, log2_ratio

__all__ = [
    "PrecisionComparison",
    "TrendRow",
    "compare_precision",
    "precision_cdf",
    "precision_trend",
    "MUL_ALGORITHMS",
    "OperatorStats",
    "PrecisionReport",
    "REJECT_COST_BITS",
    "gamma_bits",
]

MulFn = Callable[[Tnum, Tnum], Tnum]

#: The three multiplication algorithms of §IV.
MUL_ALGORITHMS: Dict[str, MulFn] = {
    "our_mul": our_mul,
    "kern_mul": kern_mul,
    "bitwise_mul": bitwise_mul_opt,
}


@dataclass
class PrecisionComparison:
    """Pairwise precision comparison of two algorithms at one width.

    Field names follow Table I's columns.
    """

    name_a: str
    name_b: str
    width: int
    total_pairs: int = 0
    equal: int = 0
    different: int = 0
    comparable: int = 0
    a_more_precise: int = 0
    b_more_precise: int = 0
    #: log2(|γ(R_b)| / |γ(R_a)|) for every differing-comparable pair —
    #: positive values mean algorithm A won (Figure 4's x-axis).
    log2_ratios: List[float] = field(default_factory=list)

    def pct(self, count: int, base: Optional[int] = None) -> float:
        base = base if base is not None else self.total_pairs
        return 100.0 * count / base if base else 0.0


def compare_precision(
    name_a: str,
    name_b: str,
    width: int,
    pairs: Optional[Iterable[Tuple[Tnum, Tnum]]] = None,
) -> PrecisionComparison:
    """Run algorithm A and B over tnum pairs and tally Table-I statistics.

    ``pairs`` defaults to *all* pairs at ``width`` (the paper's setup);
    pass a sample for quicker runs at large widths.
    """
    fn_a = MUL_ALGORITHMS[name_a]
    fn_b = MUL_ALGORITHMS[name_b]
    result = PrecisionComparison(name_a, name_b, width)

    if pairs is None:
        tnums = enumerate_tnums(width)
        pairs = ((p, q) for p in tnums for q in tnums)

    for p, q in pairs:
        result.total_pairs += 1
        ra = fn_a(p, q)
        rb = fn_b(p, q)
        if ra == rb:
            result.equal += 1
            continue
        result.different += 1
        a_le = leq(ra, rb)
        b_le = leq(rb, ra)
        if not (a_le or b_le):
            continue  # incomparable (appears only at width >= 9, per paper)
        result.comparable += 1
        if a_le:
            result.a_more_precise += 1
        else:
            result.b_more_precise += 1
        result.log2_ratios.append(
            log2_ratio(rb.cardinality(), ra.cardinality())
        )
    return result


def precision_cdf(
    comparison: PrecisionComparison, max_points: int = 200
) -> List[Tuple[float, float]]:
    """Figure 4's CDF series for one algorithm pairing."""
    return cdf_points(comparison.log2_ratios, max_points)


@dataclass
class TrendRow:
    """One row of Table I."""

    width: int
    total_pairs: int
    equal: int
    different: int
    comparable: int
    kern_more_precise: int
    our_more_precise: int

    @property
    def equal_pct(self) -> float:
        return 100.0 * self.equal / self.total_pairs

    @property
    def different_pct(self) -> float:
        return 100.0 * self.different / self.total_pairs

    @property
    def comparable_pct(self) -> float:
        return 100.0 * self.comparable / self.different if self.different else 100.0

    @property
    def kern_pct(self) -> float:
        return 100.0 * self.kern_more_precise / self.comparable if self.comparable else 0.0

    @property
    def our_pct(self) -> float:
        return 100.0 * self.our_more_precise / self.comparable if self.comparable else 0.0


def precision_trend(widths: Iterable[int]) -> List[TrendRow]:
    """Table I: our_mul vs kern_mul across widths."""
    rows: List[TrendRow] = []
    for width in widths:
        cmp_result = compare_precision("our_mul", "kern_mul", width)
        rows.append(
            TrendRow(
                width=width,
                total_pairs=cmp_result.total_pairs,
                equal=cmp_result.equal,
                different=cmp_result.different,
                comparable=cmp_result.comparable,
                kern_more_precise=cmp_result.b_more_precise,
                our_more_precise=cmp_result.a_more_precise,
            )
        )
    return rows


# -- campaign-scale precision telemetry ----------------------------------------

_REPORT_FORMAT_VERSION = 1

#: Imprecision-mass cost of one rejected-but-clean event, in bits.  A
#: false-positive rejection discards the whole program, which we price
#: like an operator claiming a byte of pure slack — large enough that
#: operators causing spurious rejections outrank ones that merely widen.
REJECT_COST_BITS = 8


def gamma_bits(scalar) -> int:
    """log2-ish abstract width of a :class:`ScalarValue` in bits.

    The γ-set of a tnum × interval product is bounded both by ``2^k`` for
    ``k`` unknown tnum bits and by the interval's span, so the tighter of
    the two log2 bounds is used.  0 means a singleton (constant).
    """
    if scalar.is_bottom():
        return 0
    unknown = bin(scalar.tnum.mask).count("1")
    span = (scalar.umax() - scalar.umin()).bit_length()
    return min(unknown, span)


@dataclass
class OperatorStats:
    """Aggregated imprecision observations for one operator label."""

    op: str
    occurrences: int = 0
    #: abstract-width histogram: γ-size bits -> observation count
    gamma_hist: Dict[int, int] = field(default_factory=dict)
    #: summed / counted / max tightness delta (abstract-range bits minus
    #: observed-concrete-range bits, clamped at 0)
    tightness_sum: int = 0
    tightness_count: int = 0
    tightness_max: int = 0
    rejections: int = 0
    rejected_clean: int = 0

    @property
    def imprecision_mass(self) -> int:
        """Total bits of observed slack, pricing clean rejections in."""
        return self.tightness_sum + REJECT_COST_BITS * self.rejected_clean

    @property
    def mean_tightness(self) -> float:
        if not self.tightness_count:
            return 0.0
        return self.tightness_sum / self.tightness_count

    @property
    def mean_gamma_bits(self) -> float:
        total = sum(self.gamma_hist.values())
        if not total:
            return 0.0
        return sum(b * n for b, n in self.gamma_hist.items()) / total

    @property
    def rejected_clean_rate(self) -> float:
        if not self.rejections:
            return 0.0
        return self.rejected_clean / self.rejections

    def merge(self, other: "OperatorStats") -> None:
        self.occurrences += other.occurrences
        for bits, count in other.gamma_hist.items():
            self.gamma_hist[bits] = self.gamma_hist.get(bits, 0) + count
        self.tightness_sum += other.tightness_sum
        self.tightness_count += other.tightness_count
        self.tightness_max = max(self.tightness_max, other.tightness_max)
        self.rejections += other.rejections
        self.rejected_clean += other.rejected_clean

    def to_dict(self) -> Dict:
        return {
            "op": self.op,
            "occurrences": self.occurrences,
            "gamma_hist": {str(b): n for b, n in sorted(self.gamma_hist.items())},
            "tightness_sum": self.tightness_sum,
            "tightness_count": self.tightness_count,
            "tightness_max": self.tightness_max,
            "rejections": self.rejections,
            "rejected_clean": self.rejected_clean,
            "imprecision_mass": self.imprecision_mass,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "OperatorStats":
        return cls(
            op=payload["op"],
            occurrences=payload["occurrences"],
            gamma_hist={int(b): n for b, n in payload["gamma_hist"].items()},
            tightness_sum=payload["tightness_sum"],
            tightness_count=payload["tightness_count"],
            tightness_max=payload["tightness_max"],
            rejections=payload["rejections"],
            rejected_clean=payload["rejected_clean"],
        )


@dataclass
class PrecisionReport:
    """Per-operator imprecision telemetry aggregated over a campaign.

    Deliberately excludes anything nondeterministic (timing, host info):
    a fixed campaign seed must serialize to byte-identical JSON whatever
    the worker count, which is what makes reports diffable across runs
    and mergeable across shards.
    """

    programs: int = 0
    accepted: int = 0
    rejected: int = 0
    rejected_clean: int = 0
    mutants: int = 0
    violations: int = 0
    operators: Dict[str, OperatorStats] = field(default_factory=dict)

    def operator(self, label: str) -> OperatorStats:
        stats = self.operators.get(label)
        if stats is None:
            stats = self.operators[label] = OperatorStats(label)
        return stats

    def merge(self, other: "PrecisionReport") -> None:
        self.programs += other.programs
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.rejected_clean += other.rejected_clean
        self.mutants += other.mutants
        self.violations += other.violations
        for label, stats in other.operators.items():
            self.operator(label).merge(stats)

    def ranked(self) -> List[OperatorStats]:
        """Operators most imprecision-mass first; name breaks ties."""
        return sorted(
            self.operators.values(),
            key=lambda s: (-s.imprecision_mass, s.op),
        )

    def to_dict(self) -> Dict:
        return {
            "format_version": _REPORT_FORMAT_VERSION,
            "programs": self.programs,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "rejected_clean": self.rejected_clean,
            "mutants": self.mutants,
            "violations": self.violations,
            "operators": {
                label: stats.to_dict()
                for label, stats in sorted(self.operators.items())
            },
            "ranking": [s.op for s in self.ranked()],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict) -> "PrecisionReport":
        version = payload.get("format_version")
        if version != _REPORT_FORMAT_VERSION:
            raise ValueError(f"unsupported precision report format {version!r}")
        return cls(
            programs=payload["programs"],
            accepted=payload["accepted"],
            rejected=payload["rejected"],
            rejected_clean=payload["rejected_clean"],
            mutants=payload["mutants"],
            violations=payload["violations"],
            operators={
                label: OperatorStats.from_dict(entry)
                for label, entry in payload["operators"].items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "PrecisionReport":
        return cls.from_dict(json.loads(text))
