"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``verify FILE``
    Assemble a BPF text file and run the miniature verifier.
``run FILE``
    Assemble and execute concretely; prints r0.
``analyze FILE``
    Verify and dump the abstract register state at every instruction.
``asm FILE -o OUT`` / ``disasm FILE``
    Assemble to kernel-format bytecode / disassemble it back.
``check-op OP``
    Bounded verification of one tnum operator (SAT, exhaustive, or
    randomized).
``eval {fig4,fig5,table1}``
    Regenerate a paper artifact at a chosen scale.
``fuzz``
    Differential fuzzing campaign: random whole programs, verifier vs.
    concrete interpreter, with shrinking and corpus persistence.
``campaign``
    Precision campaign: multi-round fuzzing with per-operator
    imprecision telemetry, mutation feedback, resumable state, and
    JSON/markdown report output.
``campaign-diff BASELINE [CANDIDATE]``
    Compare two saved ``PrecisionReport`` JSONs — or a baseline against
    a fresh fixed-seed campaign — as a per-operator tightness /
    rejected-clean delta table, with a CI gate that fails on soundness
    violations or a tightness-mass regression.
``bench``
    Measure fuzz-pipeline throughput (programs/sec) across the driver
    profiles, the abstract verifier alone (``verify_<profile>`` stages,
    cold compiled-walk per program), and the precision campaign; emits a
    ``BENCH_*.json`` baseline and optionally diffs against a committed
    one (advisory by default — machines differ).  ``--json`` adds obs
    histogram summaries (p50/p90/p99 seconds per stage).
``serve``
    Verification-as-a-service: an HTTP front end (``POST /verify``,
    ``GET /verdict/<canonical_hash>``, ``/healthz``, ``/stats``,
    ``/metrics``) over a worker pool and the shared verdict cache, so
    repeat submissions are O(1) cache hits.  See ``docs/service.md``.
``stats OBS_DIR``
    Render the observability artifacts of an ``--obs-dir`` run: the
    latest heartbeat snapshot (with a staleness warning when the
    publisher looks dead), counters, per-operator verifier/interpreter
    time attribution, and the span table from ``trace.jsonl``.
    ``--validate`` schema-checks every trace line; ``--serve`` exposes
    ``/metrics`` and ``/stats`` over HTTP.

Subcommands that use randomness (``fuzz``, ``campaign``,
``check-op --method random``, ``eval fig5``) accept ``--seed`` so every
run is reproducible.

Observability (``repro.obs``) is off by default and free when off; the
``--obs-dir``/``--obs-serve``/``--obs-sample`` flags on ``fuzz``,
``campaign``, and ``bench`` opt a run in without changing its verdicts
or reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--obs-*`` opt-in flags (fuzz, campaign, bench)."""
    group = parser.add_argument_group("observability")
    group.add_argument("--obs-dir", metavar="DIR",
                       help="write trace.jsonl, metrics.json, and "
                            "heartbeat.json under DIR (enables "
                            "observability for this run)")
    group.add_argument("--obs-serve", type=int, metavar="PORT",
                       help="serve /metrics and /stats on 127.0.0.1:PORT "
                            "for the duration of the run (0 = ephemeral)")
    group.add_argument("--obs-sample", type=float, default=0.01,
                       metavar="FRACTION",
                       help="fraction of per-program spans kept in the "
                            "trace (default 0.01; structural spans are "
                            "always kept)")


def _add_faults_flag(parser: argparse.ArgumentParser):
    """The shared ``--faults`` chaos switch; returns its group."""
    group = parser.add_argument_group("resilience")
    group.add_argument("--faults", metavar="SPEC",
                       help="arm deterministic fault injection for this "
                            "run, e.g. "
                            "'seed=42,campaign.worker.crash=0.5' "
                            "(sites and key contracts: docs/resilience.md; "
                            "also honored via the REPRO_FAULTS env var)")
    return group


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Crash-recovery knobs for multi-worker runs (fuzz, campaign)."""
    group = _add_faults_flag(parser)
    group.add_argument("--lease-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill and retry a worker batch that runs "
                            "longer than this (default: no limit)")
    group.add_argument("--batch-retries", type=int, default=3,
                       metavar="N",
                       help="attempts per worker batch before it is "
                            "quarantined (default 3)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tristate-number (tnum) abstract interpretation toolkit "
        "— CGO 2022 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="statically verify a BPF program")
    p_verify.add_argument("file", help="assembly text file ('-' for stdin)")
    p_verify.add_argument("--ctx-size", type=int, default=64,
                          help="context size in bytes (default 64)")
    p_verify.add_argument("--wire", action="store_true",
                          help="FILE is kernel wire-format bytecode, not "
                               "assembly text")
    p_verify.add_argument("--json", action="store_true",
                          help="print the verdict as JSON (the same shape "
                               "the service's POST /verify returns)")

    p_run = sub.add_parser("run", help="execute a BPF program concretely")
    p_run.add_argument("file")
    p_run.add_argument("--ctx", default="",
                       help="context bytes as hex (zero-padded to --ctx-size)")
    p_run.add_argument("--ctx-size", type=int, default=64)
    p_run.add_argument("--trace", action="store_true",
                       help="print the executed instruction indices")

    p_an = sub.add_parser("analyze",
                          help="dump abstract states at every instruction")
    p_an.add_argument("file")
    p_an.add_argument("--ctx-size", type=int, default=64)

    p_asm = sub.add_parser("asm", help="assemble to kernel-format bytecode")
    p_asm.add_argument("file")
    p_asm.add_argument("-o", "--output", required=True)

    p_dis = sub.add_parser("disasm", help="disassemble kernel-format bytecode")
    p_dis.add_argument("file")

    p_chk = sub.add_parser("check-op",
                           help="bounded verification of a tnum operator")
    p_chk.add_argument("op", help="add, sub, mul, kern_mul, bitwise_mul, "
                                  "and, or, xor, lsh, rsh, arsh, ...")
    p_chk.add_argument("--width", type=int, default=8)
    p_chk.add_argument("--method", choices=("sat", "exhaustive", "random"),
                       default="sat")
    p_chk.add_argument("--trials", type=int, default=10_000,
                       help="trials for --method random")
    p_chk.add_argument("--seed", type=int, default=0,
                       help="RNG seed for --method random (default 0)")

    p_eval = sub.add_parser("eval", help="regenerate a paper artifact")
    p_eval.add_argument("artifact", choices=("fig4", "fig5", "table1"))
    p_eval.add_argument("--width", type=int, default=5,
                        help="tnum width for fig4/table1 (default 5)")
    p_eval.add_argument("--pairs", type=int, default=2000,
                        help="input pairs for fig5 (default 2000)")
    p_eval.add_argument("--seed", type=int, default=0,
                        help="RNG seed for fig5 input pairs (default 0)")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: verifier vs. concrete interpreter",
    )
    p_fuzz.add_argument("--budget", type=int, default=1000,
                        help="number of programs to fuzz (default 1000)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; results are deterministic "
                             "for a given seed (default 0)")
    p_fuzz.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1; results do "
                             "not depend on worker count)")
    p_fuzz.add_argument("--profile", default="mixed",
                        choices=("mixed", "alu", "memory", "branchy"),
                        help="opcode-mix profile (default mixed)")
    p_fuzz.add_argument("--max-insns", type=int, default=32,
                        help="max instructions per program (default 32)")
    p_fuzz.add_argument("--inputs", type=int, default=8,
                        help="concrete inputs per program (default 8)")
    p_fuzz.add_argument("--ctx-size", type=int, default=64)
    p_fuzz.add_argument("--corpus", metavar="PATH",
                        help="write failures/seeds to a JSON corpus file")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip counterexample minimization")
    _add_resilience_flags(p_fuzz)
    _add_obs_flags(p_fuzz)

    p_camp = sub.add_parser(
        "campaign",
        help="precision campaign with per-operator imprecision telemetry",
    )
    p_camp.add_argument("--budget", type=int, default=400,
                        help="programs across all rounds (default 400)")
    p_camp.add_argument("--rounds", type=int, default=2,
                        help="campaign rounds; mutation feedback kicks in "
                             "after round 1 (default 2)")
    p_camp.add_argument("--seed", type=int, default=0,
                        help="campaign seed; reports are byte-identical "
                             "for a given seed (default 0)")
    p_camp.add_argument("--workers", type=int, default=1,
                        help="worker processes (default 1; results do "
                             "not depend on worker count)")
    p_camp.add_argument("--profile", default="mixed",
                        choices=("mixed", "alu", "memory", "branchy"),
                        help="opcode-mix profile (default mixed)")
    p_camp.add_argument("--max-insns", type=int, default=32,
                        help="max instructions per program (default 32)")
    p_camp.add_argument("--inputs", type=int, default=8,
                        help="concrete inputs per program (default 8)")
    p_camp.add_argument("--ctx-size", type=int, default=64)
    p_camp.add_argument("--mutate-fraction", type=float, default=0.5,
                        help="fraction of post-round-1 programs mutated "
                             "from pool seeds (default 0.5)")
    p_camp.add_argument("--state", metavar="DIR",
                        help="checkpoint directory; rerunning with the "
                             "same spec resumes the campaign")
    p_camp.add_argument("--verdict-cache", metavar="PATH",
                        help="persistent verdict store: structurally "
                             "identical programs are verified once, "
                             "across runs too (reports are unaffected)")
    p_camp.add_argument("--verdict-cache-size", type=int, default=65536,
                        metavar="N",
                        help="max cached verdicts before LRU eviction "
                             "(default 65536)")
    p_camp.add_argument("--report", metavar="PATH",
                        help="write the PrecisionReport as JSON")
    p_camp.add_argument("--markdown", metavar="PATH",
                        help="write the PrecisionReport as markdown")
    p_camp.add_argument("--corpus", metavar="PATH",
                        help="write violations and mutation seeds to a "
                             "JSON corpus file")
    p_camp.add_argument("--top", type=int, default=10,
                        help="operators shown in the ranking (default 10)")
    p_camp.add_argument("--no-shrink", action="store_true",
                        help="skip counterexample minimization")
    _add_resilience_flags(p_camp)
    _add_obs_flags(p_camp)

    p_diff = sub.add_parser(
        "campaign-diff",
        help="diff two precision reports (or baseline vs. a fresh "
             "fixed-seed campaign) and gate on regressions",
    )
    p_diff.add_argument("baseline",
                        help="baseline PrecisionReport JSON file")
    p_diff.add_argument("candidate", nargs="?",
                        help="candidate PrecisionReport JSON; omitted, a "
                             "fixed-seed campaign is run instead")
    p_diff.add_argument("--budget", type=int, default=150,
                        help="campaign budget when running the candidate "
                             "(default 150, the CI smoke budget)")
    p_diff.add_argument("--rounds", type=int, default=2,
                        help="campaign rounds for the candidate run "
                             "(default 2)")
    p_diff.add_argument("--seed", type=int, default=42,
                        help="campaign seed for the candidate run "
                             "(default 42; must match the baseline's)")
    p_diff.add_argument("--workers", type=int, default=1,
                        help="worker processes for the candidate run "
                             "(reports do not depend on worker count)")
    p_diff.add_argument("--profile", default="mixed",
                        choices=("mixed", "alu", "memory", "branchy"))
    p_diff.add_argument("--max-insns", type=int, default=32)
    p_diff.add_argument("--inputs", type=int, default=8)
    p_diff.add_argument("--ctx-size", type=int, default=64)
    p_diff.add_argument("--mutate-fraction", type=float, default=0.0,
                        help="mutation feedback for the candidate run "
                             "(default 0: with mutation, the round-2+ "
                             "program stream depends on the verifier "
                             "under test, so cross-version diffs would "
                             "compare different streams)")
    p_diff.add_argument("--report", metavar="PATH",
                        help="save the candidate run's PrecisionReport "
                             "as JSON (e.g. to refresh the baseline)")
    p_diff.add_argument("--markdown", metavar="PATH",
                        help="write the delta table as markdown")
    p_diff.add_argument("--top", type=int, default=15,
                        help="operators shown in the delta table "
                             "(default 15)")
    p_diff.add_argument("--max-regression", type=float, default=0.05,
                        help="gate threshold: maximum tolerated "
                             "fractional tightness-mass increase "
                             "(default 0.05)")
    p_diff.add_argument("--no-gate", action="store_true",
                        help="report only; always exit 0")

    p_bench = sub.add_parser(
        "bench",
        help="measure fuzz-pipeline throughput (driver, verifier, "
             "campaign stages) and emit a BENCH baseline",
    )
    p_bench.add_argument("--budget", type=int, default=200,
                         help="programs per driver/verifier measurement "
                              "(default 200)")
    p_bench.add_argument("--campaign-budget", type=int, default=None,
                         help="programs per campaign measurement "
                              "(default: same as --budget)")
    p_bench.add_argument("--seed", type=int, default=42,
                         help="campaign seed (default 42)")
    p_bench.add_argument("--repeats", type=int, default=2,
                         help="repetitions per measurement, best kept "
                              "(default 2)")
    p_bench.add_argument("--out", metavar="PATH",
                         help="write the throughput report as JSON "
                              "(the BENCH baseline format)")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="diff against a saved throughput baseline")
    p_bench.add_argument("--markdown", metavar="PATH",
                         help="write the baseline diff as a markdown "
                              "table (requires --baseline; CI posts it "
                              "to the step summary)")
    p_bench.add_argument("--max-regression", type=float, default=0.15,
                         help="fractional slowdown that triggers a "
                              "warning (default 0.15)")
    p_bench.add_argument("--strict", action="store_true",
                         help="exit 1 on baseline regressions instead "
                              "of warning (off by default: throughput "
                              "is machine-dependent)")
    p_bench.add_argument("--json", action="store_true",
                         help="print the report as JSON (instead of the "
                              "text summary) with per-stage obs "
                              "histogram summaries — p50/p90/p99 "
                              "seconds per timed pass — next to the "
                              "best-of throughput metrics")
    _add_obs_flags(p_bench)

    p_serve = sub.add_parser(
        "serve",
        help="serve verification over HTTP with cached verdicts "
             "(POST /verify, GET /verdict/<hash>, /healthz, /stats)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8337,
                         help="port to serve on (default 8337; 0 picks "
                              "an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="verifier worker threads; concurrent "
                              "identical submissions are single-flighted "
                              "and verify once (default 4)")
    p_serve.add_argument("--ctx-size", type=int, default=64,
                         help="default context size for requests that "
                              "omit ctx_size (default 64)")
    p_serve.add_argument("--verdict-cache", metavar="PATH",
                         help="persistent verdict store, loaded at "
                              "startup and saved on shutdown (same "
                              "format as repro campaign's)")
    p_serve.add_argument("--verdict-cache-size", type=int, default=65536,
                         metavar="N",
                         help="max cached verdicts before LRU eviction "
                              "(default 65536)")
    p_serve.add_argument("--request-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-request deadline: a verification that "
                              "outlives it answers a structured 504 "
                              "(default: no deadline)")
    p_serve.add_argument("--max-queue", type=int, default=None,
                         metavar="N",
                         help="bound the verification queue: requests "
                              "past N in flight are shed with a "
                              "structured 503 + Retry-After "
                              "(default: unbounded)")
    _add_faults_flag(p_serve)
    _add_obs_flags(p_serve)

    p_coord = sub.add_parser(
        "coordinate",
        help="run a distributed-campaign coordinator (POST /lease, "
             "POST /result, GET /round, /healthz, /stats)",
    )
    p_coord.add_argument("--budget", type=int, default=400,
                         help="programs across all rounds (default 400)")
    p_coord.add_argument("--rounds", type=int, default=2,
                         help="campaign rounds (default 2)")
    p_coord.add_argument("--seed", type=int, default=0,
                         help="campaign seed; the merged report is "
                              "byte-identical to a single-machine "
                              "`repro campaign` with the same spec "
                              "(default 0)")
    p_coord.add_argument("--profile", default="mixed",
                         choices=("mixed", "alu", "memory", "branchy"))
    p_coord.add_argument("--max-insns", type=int, default=32)
    p_coord.add_argument("--inputs", type=int, default=8)
    p_coord.add_argument("--ctx-size", type=int, default=64)
    p_coord.add_argument("--mutate-fraction", type=float, default=0.5)
    p_coord.add_argument("--no-shrink", action="store_true",
                         help="skip counterexample minimization")
    p_coord.add_argument("--state", metavar="DIR", required=True,
                         help="checkpoint directory (campaign state + "
                              "in-round lease ledger); restarting with "
                              "the same spec resumes — even after "
                              "SIGKILL mid-round")
    p_coord.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_coord.add_argument("--port", type=int, default=8347,
                         help="port to serve on (default 8347; 0 picks "
                              "an ephemeral port)")
    p_coord.add_argument("--batch-size", type=int, default=8,
                         help="campaign indices per lease (default 8)")
    p_coord.add_argument("--lease-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="re-issue a leased batch this long after "
                              "its grant (default 30)")
    p_coord.add_argument("--heartbeat-timeout", type=float, default=60.0,
                         metavar="SECONDS",
                         help="treat a worker silent this long as dead "
                              "and re-issue its leases (default 60)")
    p_coord.add_argument("--batch-retries", type=int, default=3,
                         metavar="N",
                         help="attempts per batch before it is "
                              "quarantined to the poison corpus "
                              "(default 3)")
    p_coord.add_argument("--report", metavar="PATH",
                         help="write the merged PrecisionReport as JSON")
    p_coord.add_argument("--markdown", metavar="PATH",
                         help="write the merged PrecisionReport as "
                              "markdown")
    p_coord.add_argument("--corpus", metavar="PATH",
                         help="write violations and mutation seeds to a "
                              "JSON corpus file")
    p_coord.add_argument("--top", type=int, default=10,
                         help="operators shown in the ranking "
                              "(default 10)")
    _add_faults_flag(p_coord)
    _add_obs_flags(p_coord)

    p_work = sub.add_parser(
        "work",
        help="run a stateless distributed-campaign worker against a "
             "coordinator",
    )
    p_work.add_argument("coordinator", metavar="URL",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8347")
    p_work.add_argument("--name", default=None,
                        help="worker name for leases and heartbeats "
                             "(default: <hostname>-<pid>)")
    p_work.add_argument("--poll-interval", type=float, default=0.2,
                        metavar="SECONDS",
                        help="idle wait between lease polls when the "
                             "coordinator has no grantable batch "
                             "(default 0.2)")
    _add_faults_flag(p_work)
    _add_obs_flags(p_work)

    p_stats = sub.add_parser(
        "stats",
        help="render the observability artifacts of an --obs-dir run",
    )
    p_stats.add_argument("obs_dir", metavar="OBS_DIR",
                         help="directory a fuzz/campaign/bench run "
                              "wrote with --obs-dir")
    p_stats.add_argument("--top", type=int, default=10,
                         help="operators shown per timing table "
                              "(default 10)")
    p_stats.add_argument("--validate", action="store_true",
                         help="schema-check every trace.jsonl line; "
                              "exit 1 if any record is invalid")
    p_stats.add_argument("--json", action="store_true",
                         help="print the /stats JSON payload instead of "
                              "the tables")
    p_stats.add_argument("--serve", action="store_true",
                         help="serve /metrics and /stats for this "
                              "directory until interrupted")
    p_stats.add_argument("--port", type=int, default=0,
                         help="port for --serve (default 0: ephemeral)")

    return parser


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r") as handle:
        return handle.read()


def _read_bytes(path: str) -> bytes:
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        return handle.read()


def _cmd_verify(args) -> int:
    import json

    from repro.api import IngestError, Verdict, program_from_wire
    from repro.bpf.verifier import Verifier

    if args.wire:
        try:
            program = program_from_wire(_read_bytes(args.file))
        except IngestError as exc:
            print(f"error: {args.file}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.bpf import assemble

        program = assemble(_read_text(args.file))
    result = Verifier(ctx_size=args.ctx_size).verify(program)
    # The one verdict shape repo-wide: the CLI renders the same model
    # the service serializes, so `repro verify --json` output is
    # byte-compatible with a POST /verify response body.
    verdict = Verdict.from_result(
        result, program.canonical_hash(), args.ctx_size
    )
    if args.json:
        print(json.dumps(verdict.to_payload(), indent=2, sort_keys=True))
        return 0 if verdict.ok else 1
    if verdict.ok:
        print(f"OK: {len(program)} instructions, "
              f"{verdict.insns_processed} analyzed")
        return 0
    print(f"REJECTED: {verdict.error.message()}")
    return 1


def _cmd_run(args) -> int:
    from repro.bpf import Machine, assemble

    program = assemble(_read_text(args.file))
    ctx = bytes.fromhex(args.ctx) if args.ctx else b""
    ctx = ctx.ljust(args.ctx_size, b"\x00")
    machine = Machine(ctx=ctx, record_trace=args.trace)
    outcome = machine.run(program)
    print(f"r0 = {outcome.return_value} ({outcome.return_value:#x}) "
          f"in {outcome.steps} steps")
    if args.trace:
        print("trace:", " ".join(map(str, outcome.trace)))
    return 0


def _cmd_analyze(args) -> int:
    from repro.bpf import assemble
    from repro.bpf.verifier import Verifier

    program = assemble(_read_text(args.file))
    verifier = Verifier(ctx_size=args.ctx_size, collect_states=True)
    result = verifier.verify(program)
    for idx, insn in enumerate(program):
        state = verifier.states_at.get(idx)
        print(f"{idx:>4}: {str(insn):<32} {state if state else '(unreached)'}")
    if result.ok:
        print("verdict: OK")
        return 0
    for message in result.error_messages():
        print(f"verdict: REJECTED — {message}")
    return 1


def _cmd_asm(args) -> int:
    from repro.bpf import assemble

    program = assemble(_read_text(args.file))
    data = program.to_bytes()
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"wrote {len(data)} bytes ({program.total_slots} slots) "
          f"to {args.output}")
    return 0


def _cmd_disasm(args) -> int:
    from repro.api import IngestError, program_from_wire

    try:
        program = program_from_wire(_read_bytes(args.file))
    except IngestError as exc:
        print(f"error: {args.file}: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(program.disassemble())
    return 0


def _cmd_check_op(args) -> int:
    if args.method == "sat":
        from repro.verify.sat import check_operator_soundness

        report = check_operator_soundness(args.op, args.width)
        print(report)
        return 0 if report.sound else 1
    if args.method == "exhaustive":
        from repro.core.ops import BINARY_OPS, SHIFT_OPS, UNARY_OPS
        from repro.verify.exhaustive import (
            check_shift_soundness,
            check_soundness,
            check_unary_soundness,
        )

        if args.op in BINARY_OPS:
            report = check_soundness(args.op, args.width)
        elif args.op in UNARY_OPS:
            report = check_unary_soundness(args.op, args.width)
        elif args.op in SHIFT_OPS:
            report = check_shift_soundness(args.op, args.width)
        else:
            print(f"unknown operator {args.op!r}", file=sys.stderr)
            return 2
        print(report)
        return 0 if report.holds else 1
    from repro.verify.random_check import random_check_operator

    report = random_check_operator(
        args.op, trials=args.trials, width=args.width, seed=args.seed
    )
    print(report)
    return 0 if report.passed else 1


def _cmd_eval(args) -> int:
    if args.artifact == "fig5":
        from repro.eval import (
            generate_pairs,
            render_fig5,
            speedup_summary,
            time_algorithms,
        )

        results = time_algorithms(
            generate_pairs(args.pairs, seed=args.seed), trials=3
        )
        print(render_fig5(results))
        for name, frac in speedup_summary(results).items():
            print(f"our_mul vs {name}: {100 * frac:.1f}% faster")
        return 0
    if args.artifact == "fig4":
        from repro.eval import compare_precision, precision_cdf, render_fig4

        comparisons = {
            name: compare_precision("our_mul", name, args.width)
            for name in ("kern_mul", "bitwise_mul")
        }
        print(render_fig4(
            {n: precision_cdf(c) for n, c in comparisons.items()}, args.width
        ))
        return 0
    from repro.eval import precision_trend, render_table1

    print(render_table1(precision_trend(range(5, args.width + 1))))
    return 0


def _print_violations(corpus) -> None:
    for entry in corpus.violations():
        # For mutants the generator seed alone cannot reproduce the
        # program — the note carries the origin; bytecode_hex is the
        # authoritative witness either way.
        origin = f", {entry.note}" if entry.note else ""
        print(f"\nVIOLATION (generator seed {entry.seed}{origin}):")
        print(f"  {entry.violation['kind']}: {entry.violation['message']}")
        witness = entry.shrunk_program() or entry.program()
        label = "shrunk witness" if entry.shrunk_hex else "program"
        print(f"  {label} ({len(witness)} insns):")
        for line in witness.disassemble().splitlines():
            print(f"    {line}")


def _obs_session(args):
    """Context manager for the shared ``--obs-*`` flags.

    A no-op (yielding ``None``) when no obs flag was given, so the
    default path never imports or enables ``repro.obs``.
    """
    from contextlib import nullcontext

    if args.obs_dir is None and args.obs_serve is None:
        return nullcontext(None)
    from repro import obs

    session = obs.configure(
        obs_dir=args.obs_dir,
        sample=args.obs_sample,
        serve_port=args.obs_serve,
    )
    if session.server is not None:
        print(f"obs: serving {session.server.url} (/metrics, /stats)")
    return session


def _print_obs_outputs(args) -> None:
    if args.obs_dir:
        print(f"obs: trace/metrics/heartbeat -> {args.obs_dir}")


def _arm_faults(args) -> Optional[int]:
    """Arm ``--faults`` (if given); an exit code on a bad spec."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro import faults

    try:
        faults.arm(spec)
    except ValueError as exc:
        print(f"error: --faults: {exc}", file=sys.stderr)
        return 2
    return None


def _retry_policy(args) -> "Optional[object] | int":
    """A RetryPolicy from the CLI knobs; an exit code on bad values."""
    from repro.fuzz import RetryPolicy

    try:
        return RetryPolicy(
            max_attempts=args.batch_retries,
            lease_timeout_s=args.lease_timeout,
            # Thread the campaign seed into the backoff jitter so chaos
            # runs replay their exact retry schedule.
            seed=getattr(args, "seed", 0),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_fuzz(args) -> int:
    from repro.fuzz import CampaignConfig, Corpus, run_campaign

    failed = _arm_faults(args)
    if failed is not None:
        return failed
    policy = _retry_policy(args)
    if isinstance(policy, int):
        return policy
    config = CampaignConfig(
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        profile=args.profile,
        max_insns=args.max_insns,
        ctx_size=args.ctx_size,
        inputs_per_program=args.inputs,
        shrink=not args.no_shrink,
    )
    corpus = Corpus()
    with _obs_session(args):
        result = run_campaign(config, corpus, retry_policy=policy)
    print(f"campaign: seed={args.seed} profile={args.profile} "
          f"workers={args.workers}")
    print(result.stats.summary())
    _print_violations(corpus)
    if args.corpus:
        corpus.save(args.corpus)
        print(f"\ncorpus: {len(corpus)} entries -> {args.corpus}")
    _print_obs_outputs(args)
    return 0 if result.ok else 1


def _cmd_campaign(args) -> int:
    from pathlib import Path

    from repro.eval import render_precision_markdown, render_precision_report
    from repro.fuzz import (
        CampaignSpec,
        CampaignStateError,
        run_precision_campaign,
    )

    failed = _arm_faults(args)
    if failed is not None:
        return failed
    policy = _retry_policy(args)
    if isinstance(policy, int):
        return policy
    try:
        spec = CampaignSpec(
            budget=args.budget,
            rounds=args.rounds,
            seed=args.seed,
            workers=args.workers,
            profile=args.profile,
            max_insns=args.max_insns,
            ctx_size=args.ctx_size,
            inputs_per_program=args.inputs,
            mutate_fraction=args.mutate_fraction,
            shrink=not args.no_shrink,
        )
    except ValueError as exc:   # bad option values
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None
    if args.verdict_cache:
        from repro.bpf.canon import VerdictCache

        try:
            cache = VerdictCache.load(
                args.verdict_cache, max_entries=args.verdict_cache_size
            )
        except ValueError as exc:   # stale format / wrong canon version
            print(f"error: --verdict-cache {args.verdict_cache}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        with _obs_session(args):
            result = run_precision_campaign(
                spec, state_dir=args.state, verdict_cache=cache,
                retry_policy=policy,
            )
    except CampaignStateError as exc:   # unusable --state directory
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"campaign: seed={args.seed} profile={args.profile} "
          f"rounds={args.rounds} workers={args.workers}")
    print(result.stats.summary())
    if result.quarantined:
        where = f" -> {args.state}/poison/" if args.state else ""
        print(f"quarantine: {len(result.quarantined)} poison "
              f"batch(es){where}")
    if cache is not None:
        cache.save(args.verdict_cache)
        print(cache.summary_line(args.verdict_cache))
    print()
    print(render_precision_report(result.report, top=args.top))
    _print_violations(result.corpus)
    if args.report:
        Path(args.report).write_text(result.report.to_json() + "\n")
        print(f"\nreport: JSON -> {args.report}")
    if args.markdown:
        Path(args.markdown).write_text(
            render_precision_markdown(result.report, top=args.top) + "\n"
        )
        print(f"report: markdown -> {args.markdown}")
    if args.corpus:
        result.corpus.save(args.corpus)
        print(f"corpus: {len(result.corpus)} entries -> {args.corpus}")
    _print_obs_outputs(args)
    return 0 if result.ok else 1


def _cmd_campaign_diff(args) -> int:
    from pathlib import Path

    from repro.eval import (
        PrecisionReport,
        diff_reports,
        render_diff,
        render_diff_markdown,
    )

    # Malformed reports (bad JSON, wrong top-level type, wrong-typed
    # fields) are all usage errors, not tracebacks.
    load_errors = (OSError, ValueError, KeyError, TypeError, AttributeError)
    try:
        base = PrecisionReport.from_json(Path(args.baseline).read_text())
    except load_errors as exc:
        print(f"error: cannot load baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    #: flags that only configure the candidate *campaign run* — with an
    #: explicit candidate file they would be silently meaningless, so
    #: passing a non-default value alongside one is a usage error.
    campaign_flag_defaults = {
        "budget": 150, "rounds": 2, "seed": 42, "workers": 1,
        "profile": "mixed", "max_insns": 32, "inputs": 8, "ctx_size": 64,
        "mutate_fraction": 0.0,
    }
    if args.candidate is not None:
        if args.report:
            print("error: --report saves the candidate campaign's report "
                  "and conflicts with an explicit candidate file",
                  file=sys.stderr)
            return 2
        overridden = [
            name for name, default in campaign_flag_defaults.items()
            if getattr(args, name) != default
        ]
        if overridden:
            flags = ", ".join(
                "--" + name.replace("_", "-") for name in overridden
            )
            print(f"error: {flags} only configure the candidate campaign "
                  "run and have no effect with an explicit candidate file",
                  file=sys.stderr)
            return 2
        try:
            new = PrecisionReport.from_json(
                Path(args.candidate).read_text()
            )
        except load_errors as exc:
            print(f"error: cannot load candidate {args.candidate}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        from repro.fuzz import CampaignSpec, run_precision_campaign

        try:
            spec = CampaignSpec(
                budget=args.budget,
                rounds=args.rounds,
                seed=args.seed,
                workers=args.workers,
                profile=args.profile,
                max_insns=args.max_insns,
                ctx_size=args.ctx_size,
                inputs_per_program=args.inputs,
                mutate_fraction=args.mutate_fraction,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"candidate campaign: seed={args.seed} budget={args.budget} "
              f"rounds={args.rounds} workers={args.workers}")
        new = run_precision_campaign(spec).report

    diff = diff_reports(base, new)
    print(render_diff(diff, top=args.top))
    if args.report:
        Path(args.report).write_text(new.to_json() + "\n")
        print(f"\ncandidate report: JSON -> {args.report}")
    if args.markdown:
        Path(args.markdown).write_text(
            render_diff_markdown(diff, top=args.top) + "\n"
        )
        print(f"diff: markdown -> {args.markdown}")
    failures = diff.gate_failures(max_regression=args.max_regression)
    if failures:
        for reason in failures:
            print(f"GATE: {reason}",
                  file=sys.stdout if args.no_gate else sys.stderr)
        return 0 if args.no_gate else 1
    print(f"gate: ok (mass {diff.base_mass} -> {diff.new_mass} bits, "
          f"violations {diff.new_violations})")
    return 0


def _cmd_bench(args) -> int:
    import json

    from pathlib import Path

    from repro.eval import ThroughputReport, measure_fuzz_throughput

    # Per-stage pass durations feed obs histograms when requested; the
    # observer records locally so --json works with obs fully disabled
    # (and thus measures the pristine uninstrumented pipelines).
    stage_hists = {}
    observer = None
    if args.json or args.obs_dir is not None:
        from repro.obs import Histogram

        def observer(stage: str, seconds: float) -> None:
            hist = stage_hists.get(stage)
            if hist is None:
                hist = stage_hists[stage] = Histogram()
            hist.observe(seconds)

    try:
        with _obs_session(args) as session:
            report = measure_fuzz_throughput(
                budget=args.budget,
                seed=args.seed,
                repeats=args.repeats,
                campaign_budget=args.campaign_budget,
                stage_observer=observer,
            )
            if session is not None and stage_hists:
                # Mirror the stage histograms into the obs artifacts.
                for stage, hist in stage_hists.items():
                    session.registry.histogram(
                        f"bench.{stage}.seconds"
                    ).merge(hist)
                session.write_metrics_snapshot()
    except (ValueError, KeyError) as exc:   # bad option values
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = json.loads(report.to_json())
        payload["stages_obs"] = {
            stage: hist.summary()
            for stage, hist in sorted(stage_hists.items())
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
        _print_obs_outputs(args)
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n")
        print(f"\nbaseline: JSON -> {args.out}")
    if not args.baseline:
        if args.markdown:
            print("error: --markdown renders the baseline diff and "
                  "requires --baseline", file=sys.stderr)
            return 2
        return 0
    try:
        baseline = ThroughputReport.from_json(Path(args.baseline).read_text())
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot load baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    if args.markdown:
        Path(args.markdown).write_text(report.markdown_diff(
            baseline, max_regression=args.max_regression
        ) + "\n")
        print(f"baseline diff: markdown -> {args.markdown}")
    warnings = report.compare(baseline, max_regression=args.max_regression)
    if warnings:
        for message in warnings:
            print(f"WARN: {message}",
                  file=sys.stderr if args.strict else sys.stdout)
        return 1 if args.strict else 0
    print(f"baseline: ok (no metric more than "
          f"{100 * args.max_regression:.0f}% below {args.baseline})")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.api import ApiServer, VerificationService

    failed = _arm_faults(args)
    if failed is not None:
        return failed
    try:
        service = VerificationService(
            cache_path=args.verdict_cache,
            cache_size=args.verdict_cache_size,
            workers=args.workers,
            default_ctx_size=args.ctx_size,
            max_queue=args.max_queue,
            request_timeout_s=args.request_timeout,
        )
    except ValueError as exc:   # corrupt store, bad sizes — never a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stop = threading.Event()
    restore = _install_stop_handlers(stop)
    try:
        with _obs_session(args):
            try:
                server = ApiServer(
                    service, host=args.host, port=args.port
                ).start()
            except OSError as exc:  # port in use, bad bind address
                print(f"error: cannot bind {args.host}:{args.port}: "
                      f"{exc.strerror or exc}", file=sys.stderr)
                service.close()
                return 2
            print(f"serve: {server.url}  "
                  f"(POST /verify, GET /verdict/<hash>, /healthz, "
                  f"/stats, /metrics)", flush=True)
            if args.verdict_cache:
                print(f"serve: verdict store {args.verdict_cache} "
                      f"({len(service.cache)} entries)", flush=True)
            if args.max_queue is not None or args.request_timeout is not None:
                print(f"serve: max-queue="
                      f"{args.max_queue if args.max_queue is not None else 'unbounded'} "
                      f"request-timeout="
                      f"{args.request_timeout if args.request_timeout is not None else 'none'}",
                      flush=True)
            try:
                while not stop.wait(0.5):
                    pass
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
                service.close()
    finally:
        restore()
    print("serve: shutdown")
    print(service.summary_line())
    _print_obs_outputs(args)
    return 0


def _install_stop_handlers(stop) -> "Callable[[], None]":
    """SIGINT/SIGTERM -> set ``stop``; returns an undo callable.

    Registration fails outside the main thread (tests drive the CLI
    from threads) — there KeyboardInterrupt handling alone applies.
    """
    import signal

    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(
                signum, lambda *_args: stop.set()
            )
    except ValueError:
        pass

    def restore() -> None:
        import signal as _signal

        for signum, handler in previous.items():
            _signal.signal(signum, handler)

    return restore


def _cmd_coordinate(args) -> int:
    import threading
    from pathlib import Path

    from repro.api.dist import CoordinatorApi
    from repro.eval import render_precision_markdown, render_precision_report
    from repro.fuzz import (
        CampaignSpec,
        CampaignStateError,
        Coordinator,
        CoordinatorConfig,
        RetryPolicy,
    )

    failed = _arm_faults(args)
    if failed is not None:
        return failed
    try:
        # workers=1 on purpose: the field is excluded from the campaign
        # id (reports are fleet-size-independent), so any worker count
        # may attach.
        spec = CampaignSpec(
            budget=args.budget,
            rounds=args.rounds,
            seed=args.seed,
            workers=1,
            profile=args.profile,
            max_insns=args.max_insns,
            ctx_size=args.ctx_size,
            inputs_per_program=args.inputs,
            mutate_fraction=args.mutate_fraction,
            shrink=not args.no_shrink,
        )
        config = CoordinatorConfig(
            batch_size=args.batch_size,
            lease_timeout_s=args.lease_timeout,
            heartbeat_timeout_s=args.heartbeat_timeout,
            retry=RetryPolicy(
                max_attempts=args.batch_retries, seed=args.seed
            ),
        )
    except ValueError as exc:   # bad option values
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stop = threading.Event()
    restore = _install_stop_handlers(stop)
    try:
        with _obs_session(args):
            try:
                coordinator = Coordinator(spec, args.state, config=config)
            except CampaignStateError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            try:
                server = CoordinatorApi(
                    coordinator, host=args.host, port=args.port
                ).start()
            except OSError as exc:  # port in use, bad bind address
                print(f"error: cannot bind {args.host}:{args.port}: "
                      f"{exc.strerror or exc}", file=sys.stderr)
                return 2
            print(f"coordinate: {server.url}  "
                  f"(POST /lease, POST /result, GET /round, /healthz, "
                  f"/stats)", flush=True)
            print(f"coordinate: campaign {coordinator.cid} "
                  f"budget={args.budget} rounds={args.rounds} "
                  f"seed={args.seed} state={args.state}", flush=True)
            try:
                while not coordinator.finished and not stop.wait(0.5):
                    coordinator.tick()
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
    finally:
        restore()

    result = coordinator.result()
    if not coordinator.finished:
        print(f"coordinate: interrupted after "
              f"{result.stats.rounds_completed}/{args.rounds} rounds — "
              f"rerun with the same --state to resume")
        _print_obs_outputs(args)
        return 0
    print(result.stats.summary())
    if result.quarantined:
        print(f"quarantine: {len(result.quarantined)} poison "
              f"batch(es) -> {args.state}/poison/")
    print()
    print(render_precision_report(result.report, top=args.top))
    _print_violations(result.corpus)
    if args.report:
        # Identical bytes to `repro campaign --report` for the same
        # spec — pinned by tests/fuzz/test_dist.py and CI dist-smoke.
        Path(args.report).write_text(result.report.to_json() + "\n")
        print(f"\nreport: JSON -> {args.report}")
    if args.markdown:
        Path(args.markdown).write_text(
            render_precision_markdown(result.report, top=args.top) + "\n"
        )
        print(f"report: markdown -> {args.markdown}")
    if args.corpus:
        result.corpus.save(args.corpus)
        print(f"corpus: {len(result.corpus)} entries -> {args.corpus}")
    _print_obs_outputs(args)
    return 0 if result.ok else 1


def _cmd_work(args) -> int:
    import threading

    from repro.fuzz.dist import (
        CoordinatorUnreachable,
        DistProtocolError,
        run_worker,
    )

    failed = _arm_faults(args)
    if failed is not None:
        return failed
    stop = threading.Event()
    restore = _install_stop_handlers(stop)
    try:
        with _obs_session(args):
            try:
                out = run_worker(
                    args.coordinator,
                    name=args.name,
                    stop=stop,
                    poll_interval_s=args.poll_interval,
                )
            except (CoordinatorUnreachable, DistProtocolError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    finally:
        restore()
    print(f"work: {out['worker']} executed {out['batches']} batch(es), "
          f"{out['programs']} program(s), {out['errors']} error(s), "
          f"{out['duplicates']} duplicate ack(s)")
    _print_obs_outputs(args)
    return 0


def _cmd_stats(args) -> int:
    import json
    import time
    from pathlib import Path

    from repro import obs

    obs_dir = Path(args.obs_dir)
    if not obs_dir.is_dir():
        print(f"error: {obs_dir} is not a directory", file=sys.stderr)
        return 2

    heartbeat = None
    hb_path = obs_dir / "heartbeat.json"
    if hb_path.exists():
        try:
            heartbeat = obs.read_heartbeat(hb_path)
        except (ValueError, OSError) as exc:
            print(f"error: {hb_path}: {exc}", file=sys.stderr)
            return 2

    registry = obs.Registry()
    metrics_path = obs_dir / "metrics.json"
    if metrics_path.exists():
        try:
            registry.merge_dict(json.loads(metrics_path.read_text()))
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: {metrics_path}: {exc}", file=sys.stderr)
            return 2

    if args.serve:
        server = obs.StatsServer(
            lambda: registry, obs_dir=obs_dir, port=args.port
        ).start()
        print(f"serving {server.url} (/metrics, /stats) — Ctrl-C to stop")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0

    if args.json:
        payload = obs.StatsServer(
            lambda: registry, obs_dir=obs_dir
        ).stats_payload()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if heartbeat is not None:
        skip = ("schema_version", "seq", "pid", "interval_s", "ts")
        fields = " ".join(
            f"{key}={heartbeat[key]}"
            for key in sorted(heartbeat)
            if key not in skip and not isinstance(heartbeat[key], list)
        )
        print(f"heartbeat: {fields}")
        print(f"           seq={heartbeat['seq']} pid={heartbeat['pid']} "
              f"interval={heartbeat['interval_s']}s")
        for entry in heartbeat.get("top_verifier_ops", []):
            print(f"           verifier {entry['op']:<12} "
                  f"{entry['total_s']:.4f}s over {entry['calls']} calls")
        warning = obs.staleness_warning(heartbeat)
        if warning:
            print(f"WARN: {warning}")
    else:
        print(f"heartbeat: none ({hb_path} does not exist)")

    if registry.counters:
        print("\ncounters:")
        for name in sorted(registry.counters):
            print(f"  {name:<28} {registry.counters[name].value}")
    components = sorted({comp for comp, _ in registry.timers})
    for component in components:
        print(f"\n{component} time by operator (top {args.top}):")
        print(f"  {'op':<12} {'total_s':>10} {'calls':>10} "
              f"{'mean_us':>9} {'max_us':>9}")
        for label, t in registry.top_timers(component, args.top):
            mean_us = t.total_ns / t.count / 1e3 if t.count else 0.0
            print(f"  {label:<12} {t.total_ns / 1e9:>10.4f} "
                  f"{t.count:>10} {mean_us:>9.2f} {t.max_ns / 1e3:>9.1f}")

    trace_path = obs_dir / "trace.jsonl"
    bad_records = 0
    if trace_path.exists():
        problems: list = []
        events = []
        for lineno, event in enumerate(obs.read_trace(trace_path), 1):
            events.append(event)
            if args.validate:
                for problem in obs.validate_event(event):
                    bad_records += 1
                    if len(problems) < 10:
                        problems.append(f"  line {lineno}: {problem}")
        spans = obs.aggregate_spans(events)
        if spans:
            print(f"\ntrace spans ({trace_path.name}, "
                  f"{len(events)} records):")
            print(f"  {'name':<24} {'count':>8} {'total_s':>10} "
                  f"{'max_s':>9}")
            for name in sorted(spans):
                entry = spans[name]
                print(f"  {name:<24} {entry['count']:>8} "
                      f"{entry['total_s']:>10.4f} {entry['max_s']:>9.4f}")
        if args.validate:
            if bad_records:
                print(f"\ntrace: {bad_records} invalid record(s):",
                      file=sys.stderr)
                for line in problems:
                    print(line, file=sys.stderr)
            else:
                print(f"\ntrace: all {len(events)} records are "
                      f"schema-valid (v{obs.TRACE_SCHEMA_VERSION})")
    elif args.validate:
        print(f"error: {trace_path} does not exist", file=sys.stderr)
        return 2
    return 1 if bad_records else 0


_DISPATCH = {
    "verify": _cmd_verify,
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "asm": _cmd_asm,
    "disasm": _cmd_disasm,
    "check-op": _cmd_check_op,
    "eval": _cmd_eval,
    "fuzz": _cmd_fuzz,
    "campaign": _cmd_campaign,
    "campaign-diff": _cmd_campaign_diff,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "coordinate": _cmd_coordinate,
    "work": _cmd_work,
    "stats": _cmd_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _DISPATCH[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
