"""LLVM-style KnownBits domain and conversions to/from tnums.

LLVM's dataflow analyses (ValueTracking, GlobalISel) track the same
information as tnums but encode it as two masks: ``zeros`` (bits known to
be 0) and ``ones`` (bits known to be 1); a bit unknown in both masks is µ.
The paper (§V) notes its results transfer to this domain.  This module
provides the encoding, the isomorphism with tnums, and KnownBits-native
transformers implemented *via* that isomorphism — demonstrating that the
two domains are interchangeable representations of the same lattice.

======================  =====================
KnownBits               tnum
======================  =====================
``ones``                ``value``
``~(zeros | ones)``     ``mask``
``zeros & ones != 0``   ill-formed (⊥)
======================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    our_mul,
    tnum_add,
    tnum_and,
    tnum_or,
    tnum_sub,
    tnum_xor,
)
from repro.core.tnum import Tnum, mask_for_width

__all__ = ["KnownBits"]


@dataclass(frozen=True)
class KnownBits:
    """LLVM-style known-bits: disjoint known-zero / known-one masks."""

    zeros: int
    ones: int
    width: int = 64

    def __post_init__(self) -> None:
        limit = mask_for_width(self.width)
        if not (0 <= self.zeros <= limit and 0 <= self.ones <= limit):
            raise ValueError("masks out of range for width")

    # -- conversions -----------------------------------------------------------

    @classmethod
    def from_tnum(cls, t: Tnum) -> "KnownBits":
        """Encode a tnum; ⊥ maps to the (conflicting) all-known pattern."""
        limit = mask_for_width(t.width)
        if t.is_bottom():
            return cls(limit, limit, t.width)
        zeros = ~(t.value | t.mask) & limit
        return cls(zeros, t.value, t.width)

    def to_tnum(self) -> Tnum:
        """Decode to a tnum; conflicting bits collapse to ⊥."""
        limit = mask_for_width(self.width)
        if self.zeros & self.ones:
            return Tnum.bottom(self.width)
        mask = ~(self.zeros | self.ones) & limit
        return Tnum(self.ones, mask, self.width)

    @classmethod
    def const(cls, value: int, width: int = 64) -> "KnownBits":
        v = value & mask_for_width(width)
        return cls(~v & mask_for_width(width), v, width)

    @classmethod
    def unknown(cls, width: int = 64) -> "KnownBits":
        return cls(0, 0, width)

    # -- queries (LLVM API names) ----------------------------------------------

    def is_constant(self) -> bool:
        """LLVM ``KnownBits::isConstant`` — every bit known."""
        return (self.zeros | self.ones) == mask_for_width(self.width)

    def get_constant(self) -> int:
        if not self.is_constant():
            raise ValueError("not a constant")
        return self.ones

    def has_conflict(self) -> bool:
        """LLVM ``KnownBits::hasConflict`` — a bit both known-0 and known-1."""
        return bool(self.zeros & self.ones)

    def count_min_leading_zeros(self) -> int:
        """Minimum number of leading zero bits over all concrete values."""
        known_zero_prefix = 0
        for i in reversed(range(self.width)):
            if (self.zeros >> i) & 1:
                known_zero_prefix += 1
            else:
                break
        return known_zero_prefix

    def count_max_active_bits(self) -> int:
        """Max possible position of the highest set bit, plus one."""
        return self.width - self.count_min_leading_zeros()

    def unknown_bits(self) -> int:
        return ~(self.zeros | self.ones) & mask_for_width(self.width)

    # -- transformers (via the tnum isomorphism) --------------------------------

    def _lift2(self, other: "KnownBits", op) -> "KnownBits":
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")
        return KnownBits.from_tnum(op(self.to_tnum(), other.to_tnum()))

    def add(self, other: "KnownBits") -> "KnownBits":
        """Abstract addition — inherits soundness/optimality from tnum_add."""
        return self._lift2(other, tnum_add)

    def sub(self, other: "KnownBits") -> "KnownBits":
        return self._lift2(other, tnum_sub)

    def mul(self, other: "KnownBits") -> "KnownBits":
        """Abstract multiplication via the paper's ``our_mul``."""
        return self._lift2(other, our_mul)

    def and_(self, other: "KnownBits") -> "KnownBits":
        return self._lift2(other, tnum_and)

    def or_(self, other: "KnownBits") -> "KnownBits":
        return self._lift2(other, tnum_or)

    def xor(self, other: "KnownBits") -> "KnownBits":
        return self._lift2(other, tnum_xor)

    def __str__(self) -> str:
        return str(self.to_tnum())
