"""Reduced product of the tnum and interval domains.

The BPF verifier's scalar register state is (essentially) a reduced
product: a tnum plus unsigned/signed ranges that are repeatedly *synced*
against each other (kernel ``reg_bounds_sync`` / ``__update_reg_bounds`` /
``__reg_deduce_bounds``).  Each domain sharpens the other:

* the tnum bounds the range: any concrete value lies in
  ``[t.value, t.value | t.mask]``;
* the range bounds the tnum: the shared high-order prefix of ``umin`` and
  ``umax`` is known, so ``tnum_range(umin, umax)`` can be intersected in.

This mutual refinement is what lets the verifier prove facts like
``x & 0xf <= 15`` *and* ``x - x == 0`` that neither domain proves alone.
"""

from __future__ import annotations

from typing import Dict

from repro.core import (
    our_mul,
    tnum_add,
    tnum_and,
    tnum_arshift,
    tnum_div,
    tnum_lshift,
    tnum_mod,
    tnum_neg,
    tnum_or,
    tnum_rshift,
    tnum_sub,
    tnum_xor,
)
from repro.core.lattice import join as tnum_join
from repro.core.lattice import leq as tnum_leq
from repro.core.lattice import meet as tnum_meet
from repro.core.tnum import Tnum

from .interval import Interval

__all__ = ["ScalarValue"]

#: Interned ⊤ / ⊥ per width — every widening and every infeasible branch
#: produces one of these; sharing them skips the construction entirely.
_TOP: Dict[int, "ScalarValue"] = {}
_BOTTOM: Dict[int, "ScalarValue"] = {}


class ScalarValue:
    """A scalar abstract value: tnum × unsigned interval, kept in sync.

    Construct via :meth:`make` (which reduces) or the ``const`` / ``top`` /
    ``bottom`` helpers.  All transformer methods return reduced products.

    Immutable ``__slots__`` class: the verifier builds one of these per
    scalar transfer, so construction cost is throughput (see the
    decode-once pipeline notes in :mod:`repro.bpf.compiled`).
    """

    __slots__ = ("tnum", "interval")

    tnum: Tnum
    interval: Interval

    def __init__(self, tnum: Tnum, interval: Interval) -> None:
        object.__setattr__(self, "tnum", tnum)
        object.__setattr__(self, "interval", interval)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ScalarValue instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScalarValue):
            return NotImplemented
        return self.tnum == other.tnum and self.interval == other.interval

    def __hash__(self) -> int:
        return hash((self.tnum, self.interval))

    def __repr__(self) -> str:
        return f"ScalarValue(tnum={self.tnum!r}, interval={self.interval!r})"

    # -- constructors ------------------------------------------------------

    @classmethod
    def make(cls, tnum: Tnum, interval: Interval) -> "ScalarValue":
        """Build and mutually reduce the two components."""
        return cls(tnum, interval)._reduce()

    @classmethod
    def const(cls, value: int, width: int = 64) -> "ScalarValue":
        return cls(Tnum.const(value, width), Interval.const(value, width))

    @classmethod
    def top(cls, width: int = 64) -> "ScalarValue":
        cached = _TOP.get(width)
        if cached is None:
            cached = _TOP[width] = cls(
                Tnum.unknown(width), Interval.top(width)
            )
        return cached

    @classmethod
    def bottom(cls, width: int = 64) -> "ScalarValue":
        cached = _BOTTOM.get(width)
        if cached is None:
            cached = _BOTTOM[width] = cls(
                Tnum.bottom(width), Interval.bottom(width)
            )
        return cached

    @classmethod
    def from_tnum(cls, t: Tnum) -> "ScalarValue":
        return cls.make(t, Interval.from_tnum(t))

    @classmethod
    def from_range(cls, lo: int, hi: int, width: int = 64) -> "ScalarValue":
        iv = Interval(lo, hi, width)
        return cls.make(iv.to_tnum(), iv)

    # -- reduction (kernel reg_bounds_sync) ---------------------------------

    def _reduce(self) -> "ScalarValue":
        t, iv = self.tnum, self.interval
        if t.is_bottom() or iv.is_bottom():
            return ScalarValue.bottom(self.width)
        # Range → tnum: intersect with the range's prefix tnum.
        t2 = tnum_meet(t, iv.to_tnum())
        if t2.is_bottom():
            return ScalarValue.bottom(self.width)
        # Tnum → range: clamp bounds to the tnum's min/max.
        iv2 = iv.meet(Interval(t2.min_value(), t2.max_value(), self.width))
        if iv2.is_bottom():
            return ScalarValue.bottom(self.width)
        return ScalarValue(t2, iv2)

    # -- properties ---------------------------------------------------------

    @property
    def width(self) -> int:
        return self.tnum.width

    def is_bottom(self) -> bool:
        return self.tnum.is_bottom() or self.interval.is_bottom()

    def is_const(self) -> bool:
        return self.tnum.is_const() or self.interval.is_const()

    def const_value(self) -> int:
        if self.tnum.is_const():
            return self.tnum.value
        if self.interval.is_const():
            return self.interval.umin
        raise ValueError("not a constant")

    def contains(self, value: int) -> bool:
        return self.tnum.contains(value) and self.interval.contains(value)

    def umin(self) -> int:
        return self.interval.umin

    def umax(self) -> int:
        return self.interval.umax

    # -- lattice --------------------------------------------------------------

    def leq(self, other: "ScalarValue") -> bool:
        return tnum_leq(self.tnum, other.tnum) and self.interval.leq(other.interval)

    def join(self, other: "ScalarValue") -> "ScalarValue":
        return ScalarValue.make(
            tnum_join(self.tnum, other.tnum), self.interval.join(other.interval)
        )

    def meet(self, other: "ScalarValue") -> "ScalarValue":
        return ScalarValue.make(
            tnum_meet(self.tnum, other.tnum), self.interval.meet(other.interval)
        )

    # -- transformers -----------------------------------------------------------

    def _binary(self, other: "ScalarValue", t_op, iv_op) -> "ScalarValue":
        if self.is_bottom() or other.is_bottom():
            return ScalarValue.bottom(self.width)
        return ScalarValue.make(
            t_op(self.tnum, other.tnum), iv_op(self.interval, other.interval)
        )

    def add(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_add, Interval.add)

    def sub(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_sub, Interval.sub)

    def mul(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, our_mul, Interval.mul)

    # Bitwise and division ops run a *native* interval transfer alongside
    # the tnum one; :meth:`make`'s reduction then meets the two results,
    # so whichever domain is sharper wins per bound.  (The kernel gets the
    # same effect from ``scalar_min_max_*`` + ``reg_bounds_sync``.)  The
    # interval transfers are exact for and/or/xor and wraparound-aware for
    # add/sub, which is where the tnum-derived fallback used to discard
    # all operand range knowledge.

    def and_(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_and, Interval.and_)

    def or_(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_or, Interval.or_)

    def xor(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_xor, Interval.xor)

    def div(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_div, Interval.udiv)

    def mod(self, other: "ScalarValue") -> "ScalarValue":
        return self._binary(other, tnum_mod, Interval.umod)

    def neg(self) -> "ScalarValue":
        t = tnum_neg(self.tnum)
        return ScalarValue.make(t, self.interval.neg())

    def lshift(self, shift: int) -> "ScalarValue":
        t = tnum_lshift(self.tnum, shift)
        return ScalarValue.make(t, self.interval.lshift(shift))

    def rshift(self, shift: int) -> "ScalarValue":
        t = tnum_rshift(self.tnum, shift)
        return ScalarValue.make(t, self.interval.rshift(shift))

    def arshift(self, shift: int) -> "ScalarValue":
        # The unsigned interval routes through the signed domain: an
        # arithmetic shift is monotone on the signed view, and the result
        # maps back exactly whenever it stays within one sign half.
        from .signed_interval import SignedInterval

        t = tnum_arshift(self.tnum, shift)
        if self.interval.is_bottom():
            return ScalarValue.make(t, self.interval)
        iv = SignedInterval.from_unsigned(self.interval).arshift(shift).to_unsigned()
        return ScalarValue.make(t, iv)

    # -- branch refinement --------------------------------------------------------

    def refine_ult(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(self.tnum, self.interval.refine_ult(bound))

    def refine_ule(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(self.tnum, self.interval.refine_ule(bound))

    def refine_ugt(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(self.tnum, self.interval.refine_ugt(bound))

    def refine_uge(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(self.tnum, self.interval.refine_uge(bound))

    def refine_eq(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(
            tnum_meet(self.tnum, Tnum.const(bound, self.width)),
            self.interval.refine_eq(bound),
        )

    def refine_ne(self, bound: int) -> "ScalarValue":
        return ScalarValue.make(self.tnum, self.interval.refine_ne(bound))

    def __str__(self) -> str:
        return f"{self.tnum} ∩ {self.interval}"
