"""Reduced product of the tnum and interval domains.

The BPF verifier's scalar register state is (essentially) a reduced
product: a tnum plus unsigned/signed ranges that are repeatedly *synced*
against each other (kernel ``reg_bounds_sync`` / ``__update_reg_bounds`` /
``__reg_deduce_bounds``).  Each domain sharpens the other:

* the tnum bounds the range: any concrete value lies in
  ``[t.value, t.value | t.mask]``;
* the range bounds the tnum: the shared high-order prefix of ``umin`` and
  ``umax`` is known, so ``tnum_range(umin, umax)`` can be intersected in.

This mutual refinement is what lets the verifier prove facts like
``x & 0xf <= 15`` *and* ``x - x == 0`` that neither domain proves alone.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import (
    our_mul,
    tnum_add,
    tnum_and,
    tnum_arshift,
    tnum_div,
    tnum_lshift,
    tnum_mod,
    tnum_neg,
    tnum_or,
    tnum_rshift,
    tnum_sub,
    tnum_xor,
)
from repro.core.lattice import join as tnum_join
from repro.core.lattice import leq as tnum_leq
from repro.core.lattice import meet as tnum_meet
from repro.core.tnum import Tnum

from .interval import Interval

__all__ = ["ScalarValue"]

#: Interned ⊤ / ⊥ per width — every widening and every infeasible branch
#: produces one of these; sharing them skips the construction entirely.
_TOP: Dict[int, "ScalarValue"] = {}
_BOTTOM: Dict[int, "ScalarValue"] = {}
#: Interned small constants (immediates, loop bounds, offsets dominate
#: the fuzz workload); bounded so the cache cannot grow without limit.
_CONST_CACHE: Dict[Tuple[int, int], "ScalarValue"] = {}
_CONST_CACHE_MAX = 1024


class ScalarValue:
    """A scalar abstract value: tnum × unsigned interval, kept in sync.

    Construct via :meth:`make` (which reduces) or the ``const`` / ``top`` /
    ``bottom`` helpers.  All transformer methods return reduced products.

    Immutable ``__slots__`` class: the verifier builds one of these per
    scalar transfer, so construction cost is throughput (see the
    decode-once pipeline notes in :mod:`repro.bpf.compiled`).
    """

    __slots__ = ("tnum", "interval")

    tnum: Tnum
    interval: Interval

    def __init__(self, tnum: Tnum, interval: Interval) -> None:
        object.__setattr__(self, "tnum", tnum)
        object.__setattr__(self, "interval", interval)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ScalarValue instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScalarValue):
            return NotImplemented
        return self.tnum == other.tnum and self.interval == other.interval

    def __hash__(self) -> int:
        return hash((self.tnum, self.interval))

    def __repr__(self) -> str:
        return f"ScalarValue(tnum={self.tnum!r}, interval={self.interval!r})"

    # -- constructors ------------------------------------------------------

    @classmethod
    def make(cls, tnum: Tnum, interval: Interval) -> "ScalarValue":
        """Build and mutually reduce the two components."""
        return _reduce_pair(tnum, interval)

    @classmethod
    def const(cls, value: int, width: int = 64) -> "ScalarValue":
        v = value & ((1 << width) - 1)
        if v < _CONST_CACHE_MAX:
            key = (v, width)
            cached = _CONST_CACHE.get(key)
            if cached is None:
                cached = _CONST_CACHE[key] = cls(
                    Tnum.const(v, width), Interval.const(v, width)
                )
            return cached
        return cls(Tnum.const(v, width), Interval.const(v, width))

    @classmethod
    def top(cls, width: int = 64) -> "ScalarValue":
        cached = _TOP.get(width)
        if cached is None:
            cached = _TOP[width] = cls(
                Tnum.unknown(width), Interval.top(width)
            )
        return cached

    @classmethod
    def bottom(cls, width: int = 64) -> "ScalarValue":
        cached = _BOTTOM.get(width)
        if cached is None:
            cached = _BOTTOM[width] = cls(
                Tnum.bottom(width), Interval.bottom(width)
            )
        return cached

    @classmethod
    def from_tnum(cls, t: Tnum) -> "ScalarValue":
        return cls.make(t, Interval.from_tnum(t))

    @classmethod
    def from_range(cls, lo: int, hi: int, width: int = 64) -> "ScalarValue":
        iv = Interval(lo, hi, width)
        return cls.make(iv.to_tnum(), iv)

    # -- reduction (kernel reg_bounds_sync) ---------------------------------

    def _reduce(self) -> "ScalarValue":
        return _reduce_pair(self.tnum, self.interval)

    # -- properties ---------------------------------------------------------

    @property
    def width(self) -> int:
        return self.tnum.width

    def is_bottom(self) -> bool:
        t = self.tnum
        iv = self.interval
        return (t.value & t.mask) != 0 or iv.umin > iv.umax

    def is_const(self) -> bool:
        return self.tnum.is_const() or self.interval.is_const()

    def const_value(self) -> int:
        if self.tnum.is_const():
            return self.tnum.value
        if self.interval.is_const():
            return self.interval.umin
        raise ValueError("not a constant")

    def contains(self, value: int) -> bool:
        return self.tnum.contains(value) and self.interval.contains(value)

    def umin(self) -> int:
        return self.interval.umin

    def umax(self) -> int:
        return self.interval.umax

    # -- lattice --------------------------------------------------------------

    def leq(self, other: "ScalarValue") -> bool:
        return tnum_leq(self.tnum, other.tnum) and self.interval.leq(other.interval)

    def join(self, other: "ScalarValue") -> "ScalarValue":
        return ScalarValue.make(
            tnum_join(self.tnum, other.tnum), self.interval.join(other.interval)
        )

    def meet(self, other: "ScalarValue") -> "ScalarValue":
        return ScalarValue.make(
            tnum_meet(self.tnum, other.tnum), self.interval.meet(other.interval)
        )

    # -- transformers -----------------------------------------------------------

    def _binary(self, other: "ScalarValue", t_op, iv_op) -> "ScalarValue":
        if self.is_bottom() or other.is_bottom():
            return ScalarValue.bottom(self.width)
        return ScalarValue.make(
            t_op(self.tnum, other.tnum), iv_op(self.interval, other.interval)
        )

    def _const_operands(self, other: "ScalarValue"):
        """``(a, b)`` when both sides are reduced constants, else None.

        Every binary transfer here is exact on singletons (checked by
        the cross-property suite), so const × const short-circuits to
        concrete arithmetic — the single most common operand shape in
        generated programs (immediates, lddw results, loop counters).
        """
        t1, t2 = self.tnum, other.tnum
        if t1.mask or t2.mask:
            return None
        a, b = t1.value, t2.value
        iv1, iv2 = self.interval, other.interval
        if iv1.umin == a and iv1.umax == a and iv2.umin == b and iv2.umax == b:
            return a, b
        return None

    def add(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] + ab[1], self.width)
        return self._binary(other, tnum_add, Interval.add)

    def sub(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] - ab[1], self.width)
        return self._binary(other, tnum_sub, Interval.sub)

    def mul(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] * ab[1], self.width)
        return self._binary(other, our_mul, Interval.mul)

    # Bitwise and division ops run a *native* interval transfer alongside
    # the tnum one; :meth:`make`'s reduction then meets the two results,
    # so whichever domain is sharper wins per bound.  (The kernel gets the
    # same effect from ``scalar_min_max_*`` + ``reg_bounds_sync``.)  The
    # interval transfers are exact for and/or/xor and wraparound-aware for
    # add/sub, which is where the tnum-derived fallback used to discard
    # all operand range knowledge.

    def and_(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] & ab[1], self.width)
        return self._binary(other, tnum_and, Interval.and_)

    def or_(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] | ab[1], self.width)
        return self._binary(other, tnum_or, Interval.or_)

    def xor(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            return ScalarValue.const(ab[0] ^ ab[1], self.width)
        return self._binary(other, tnum_xor, Interval.xor)

    def div(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            # BPF-defined semantics: x / 0 == 0.
            return ScalarValue.const(
                ab[0] // ab[1] if ab[1] else 0, self.width
            )
        return self._binary(other, tnum_div, Interval.udiv)

    def mod(self, other: "ScalarValue") -> "ScalarValue":
        ab = self._const_operands(other)
        if ab is not None:
            # BPF-defined semantics: x % 0 == x.
            return ScalarValue.const(
                ab[0] % ab[1] if ab[1] else ab[0], self.width
            )
        return self._binary(other, tnum_mod, Interval.umod)

    def _const_value(self):
        """The value of a reduced constant, else None (cf. _const_operands)."""
        t = self.tnum
        if t.mask:
            return None
        v = t.value
        iv = self.interval
        if iv.umin == v and iv.umax == v:
            return v
        return None

    def neg(self) -> "ScalarValue":
        v = self._const_value()
        if v is not None:
            return ScalarValue.const(-v, self.width)
        t = tnum_neg(self.tnum)
        return ScalarValue.make(t, self.interval.neg())

    def lshift(self, shift: int) -> "ScalarValue":
        v = self._const_value()
        if v is not None:
            return ScalarValue.const(v << shift, self.width)
        t = tnum_lshift(self.tnum, shift)
        return ScalarValue.make(t, self.interval.lshift(shift))

    def rshift(self, shift: int) -> "ScalarValue":
        v = self._const_value()
        if v is not None:
            return ScalarValue.const(v >> shift, self.width)
        t = tnum_rshift(self.tnum, shift)
        return ScalarValue.make(t, self.interval.rshift(shift))

    def arshift(self, shift: int) -> "ScalarValue":
        v = self._const_value()
        if v is not None:
            if v >> (self.width - 1):  # sign-extend, then shift
                v -= 1 << self.width
            return ScalarValue.const(v >> shift, self.width)
        # The unsigned interval routes through the signed domain: an
        # arithmetic shift is monotone on the signed view, and the result
        # maps back exactly whenever it stays within one sign half.
        from .signed_interval import SignedInterval

        t = tnum_arshift(self.tnum, shift)
        if self.interval.is_bottom():
            return ScalarValue.make(t, self.interval)
        iv = SignedInterval.from_unsigned(self.interval).arshift(shift).to_unsigned()
        return ScalarValue.make(t, iv)

    # -- branch refinement --------------------------------------------------------

    def _with_refined_interval(self, refined: Interval) -> "ScalarValue":
        """Rebuild after an interval-only refinement.

        When the refinement did not actually narrow the interval, the
        reduced product is unchanged — re-reducing would only rebuild an
        equal object, so return ``self`` (branch bounds already implied
        by the state are the common case at re-converging guards).
        """
        iv = self.interval
        if refined.umin == iv.umin and refined.umax == iv.umax:
            return self
        return ScalarValue.make(self.tnum, refined)

    def refine_ult(self, bound: int) -> "ScalarValue":
        return self._with_refined_interval(self.interval.refine_ult(bound))

    def refine_ule(self, bound: int) -> "ScalarValue":
        return self._with_refined_interval(self.interval.refine_ule(bound))

    def refine_ugt(self, bound: int) -> "ScalarValue":
        return self._with_refined_interval(self.interval.refine_ugt(bound))

    def refine_uge(self, bound: int) -> "ScalarValue":
        return self._with_refined_interval(self.interval.refine_uge(bound))

    def refine_eq(self, bound: int) -> "ScalarValue":
        # Assuming equality collapses the product to exactly const(bound)
        # — or ⊥ when either component excludes the bound.  This is what
        # the generic meet-then-reduce sequence returns, without building
        # the intermediate tnum/interval pair (equality guards are the
        # most common refinement in branchy code).
        t = self.tnum
        iv = self.interval
        b = bound & ((1 << t.width) - 1)
        if (
            not (t.value & t.mask)          # not ⊥
            and (b & ~t.mask) == t.value    # tnum contains the bound
            and iv.umin <= b <= iv.umax     # interval contains the bound
        ):
            return ScalarValue.const(b, t.width)
        return ScalarValue.bottom(t.width)

    def refine_ne(self, bound: int) -> "ScalarValue":
        return self._with_refined_interval(self.interval.refine_ne(bound))

    def __str__(self) -> str:
        return f"{self.tnum} ∩ {self.interval}"


def _reduce_pair(t: Tnum, iv: Interval) -> ScalarValue:
    """Mutually reduce (tnum, interval) — kernel ``reg_bounds_sync``.

    This runs once per abstract transfer, so the dominant shapes take
    exact fast paths that skip the generic meet machinery entirely:

    * either side ⊥ → ⊥;
    * constant tnum: the interval can only clamp to that constant (or
      prove ⊥) — no tnum_meet / tnum_range construction needed;
    * constant interval: the tnum can only sharpen to that constant if
      it contains it, else ⊥;
    * top interval: the range meet reduces to the tnum's [min, max].

    Each fast path returns exactly what the generic sequence
    (``tnum_meet`` with the range tnum, then clamping the interval to the
    tnum's bounds) would — the property/differential suites and the
    fixed-seed precision golden pin that equivalence.
    """
    tv, tm = t.value, t.mask
    lo, hi = iv.umin, iv.umax
    width = t.width
    if tv & tm or lo > hi:
        return ScalarValue.bottom(width)
    if tm == 0:  # constant tnum
        if lo <= tv <= hi:
            return ScalarValue(t, iv if lo == hi else Interval.const(tv, width))
        return ScalarValue.bottom(width)
    if lo == hi:  # constant interval
        if (lo & ~tm) == tv:
            return ScalarValue(Tnum.const(lo, width), iv)
        return ScalarValue.bottom(width)
    if lo == 0 and hi == (1 << width) - 1:  # top interval
        return ScalarValue(t, Interval(tv, tv | tm, width))
    # Range → tnum: intersect with the range's prefix tnum.
    t2 = tnum_meet(t, iv.to_tnum())
    t2v, t2m = t2.value, t2.mask
    if t2v & t2m:
        return ScalarValue.bottom(width)
    # Tnum → range: clamp bounds to the tnum's min/max.
    iv2 = iv.meet(Interval(t2v, t2v | t2m, width))
    if iv2.umin > iv2.umax:
        return ScalarValue.bottom(width)
    return ScalarValue(t2, iv2)
