"""Unsigned and signed interval domains, kernel `bpf_reg_state`-style.

The Linux BPF verifier tracks, alongside the tnum, unsigned bounds
``[umin, umax]`` and signed bounds ``[smin, smax]`` for every scalar
register.  The tnum domain alone cannot represent contiguous ranges
precisely (e.g. ``[3, 5]`` abstracts to ``0µµ`` ⊇ {0..7} over 3 bits), so
the two domains cooperate (see :mod:`repro.domains.product`).

This module implements the unsigned interval lattice with the abstract
transformers the verifier needs: add/sub/mul with overflow-aware widening
to ⊤, bitwise ops bounded via tnum conversion, and branch refinement for
the BPF conditional jumps (``<``, ``<=``, ``>``, ``>=``, ``==``, ``!=`` in
both signednesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.tnum import Tnum, mask_for_width

__all__ = ["Interval", "signed_bounds", "to_signed", "to_unsigned"]


def to_signed(x: int, width: int) -> int:
    """Reinterpret an unsigned width-bit pattern as two's complement."""
    sign = 1 << (width - 1)
    return x - (1 << width) if x & sign else x


def to_unsigned(x: int, width: int) -> int:
    """Reduce a signed value into its unsigned width-bit pattern."""
    return x & mask_for_width(width)


@dataclass(frozen=True)
class Interval:
    """An unsigned interval ``[umin, umax]`` over width-bit words.

    ``umin > umax`` is normalized to the canonical bottom (empty) interval.
    The signed view is derived on demand (:meth:`smin` / :meth:`smax`),
    mirroring how the kernel keeps both bound families in sync.
    """

    umin: int
    umax: int
    width: int = 64

    def __post_init__(self) -> None:
        limit = mask_for_width(self.width)
        if not (0 <= self.umin <= limit and 0 <= self.umax <= limit):
            if self.umin <= self.umax:  # genuine out-of-range, not bottom
                raise ValueError(
                    f"bounds [{self.umin}, {self.umax}] out of width-{self.width} range"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def top(cls, width: int = 64) -> "Interval":
        return cls(0, mask_for_width(width), width)

    @classmethod
    def bottom(cls, width: int = 64) -> "Interval":
        return cls(1, 0, width)

    @classmethod
    def const(cls, value: int, width: int = 64) -> "Interval":
        v = value & mask_for_width(width)
        return cls(v, v, width)

    @classmethod
    def from_tnum(cls, t: Tnum) -> "Interval":
        """Tightest interval containing γ(t): ``[t.value, t.value|t.mask]``."""
        if t.is_bottom():
            return cls.bottom(t.width)
        return cls(t.min_value(), t.max_value(), t.width)

    # -- predicates ----------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.umin > self.umax

    def is_top(self) -> bool:
        return self.umin == 0 and self.umax == mask_for_width(self.width)

    def is_const(self) -> bool:
        return self.umin == self.umax

    def contains(self, value: int) -> bool:
        value &= mask_for_width(self.width)
        return self.umin <= value <= self.umax

    def cardinality(self) -> int:
        if self.is_bottom():
            return 0
        return self.umax - self.umin + 1

    # -- signed view -----------------------------------------------------------

    def smin(self) -> int:
        """Best signed lower bound derivable from the unsigned bounds."""
        lo, hi = signed_bounds(self.umin, self.umax, self.width)
        return lo

    def smax(self) -> int:
        """Best signed upper bound derivable from the unsigned bounds."""
        lo, hi = signed_bounds(self.umin, self.umax, self.width)
        return hi

    # -- lattice -----------------------------------------------------------

    def leq(self, other: "Interval") -> bool:
        self._check(other)
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return other.umin <= self.umin and self.umax <= other.umax

    def join(self, other: "Interval") -> "Interval":
        self._check(other)
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return Interval(
            min(self.umin, other.umin), max(self.umax, other.umax), self.width
        )

    def meet(self, other: "Interval") -> "Interval":
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        lo = max(self.umin, other.umin)
        hi = min(self.umax, other.umax)
        if lo > hi:
            return Interval.bottom(self.width)
        return Interval(lo, hi, self.width)

    def _check(self, other: "Interval") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- transformers --------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        """Abstract addition; widens to ⊤ on possible unsigned overflow."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        limit = mask_for_width(self.width)
        lo = self.umin + other.umin
        hi = self.umax + other.umax
        if hi > limit:
            return Interval.top(self.width)
        return Interval(lo, hi, self.width)

    def sub(self, other: "Interval") -> "Interval":
        """Abstract subtraction; widens to ⊤ on possible underflow."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        lo = self.umin - other.umax
        if lo < 0:
            return Interval.top(self.width)
        return Interval(lo, self.umax - other.umin, self.width)

    def mul(self, other: "Interval") -> "Interval":
        """Abstract multiplication; widens to ⊤ on possible overflow."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        limit = mask_for_width(self.width)
        hi = self.umax * other.umax
        if hi > limit:
            return Interval.top(self.width)
        return Interval(self.umin * other.umin, hi, self.width)

    def neg(self) -> "Interval":
        """Abstract negation (exact only for constants; else ⊤)."""
        if self.is_bottom():
            return self
        if self.is_const():
            return Interval.const(-self.umin, self.width)
        return Interval.top(self.width)

    # -- branch refinement -----------------------------------------------------

    def refine_ult(self, bound: int) -> "Interval":
        """Assume ``self < bound`` (unsigned)."""
        if bound == 0:
            return Interval.bottom(self.width)
        return self.meet(Interval(0, bound - 1, self.width))

    def refine_ule(self, bound: int) -> "Interval":
        """Assume ``self <= bound`` (unsigned)."""
        return self.meet(Interval(0, bound, self.width))

    def refine_ugt(self, bound: int) -> "Interval":
        """Assume ``self > bound`` (unsigned)."""
        limit = mask_for_width(self.width)
        if bound == limit:
            return Interval.bottom(self.width)
        return self.meet(Interval(bound + 1, limit, self.width))

    def refine_uge(self, bound: int) -> "Interval":
        """Assume ``self >= bound`` (unsigned)."""
        return self.meet(Interval(bound, mask_for_width(self.width), self.width))

    def refine_eq(self, bound: int) -> "Interval":
        """Assume ``self == bound``."""
        return self.meet(Interval.const(bound, self.width))

    def refine_ne(self, bound: int) -> "Interval":
        """Assume ``self != bound`` — shrinks only at the edges."""
        if self.is_bottom():
            return self
        b = bound & mask_for_width(self.width)
        if self.is_const() and self.umin == b:
            return Interval.bottom(self.width)
        if self.umin == b:
            return Interval(self.umin + 1, self.umax, self.width)
        if self.umax == b:
            return Interval(self.umin, self.umax - 1, self.width)
        return self

    # -- conversion -----------------------------------------------------------

    def to_tnum(self) -> Tnum:
        """The tightest tnum covering this range (kernel ``tnum_range``)."""
        if self.is_bottom():
            return Tnum.bottom(self.width)
        return Tnum.range(self.umin, self.umax, self.width)

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        return f"[{self.umin}, {self.umax}]u{self.width}"


def signed_bounds(umin: int, umax: int, width: int) -> Tuple[int, int]:
    """Best signed bounds for the unsigned range ``[umin, umax]``.

    If the range stays within one sign half it maps directly; if it
    straddles the sign boundary the signed range covers the full signed
    span of the straddled region.
    """
    sign = 1 << (width - 1)
    if umax < sign or umin >= sign:
        # All non-negative, or all negative: order-preserving.
        return to_signed(umin, width), to_signed(umax, width)
    # Straddles: contains both 2^{w-1}-1 (max signed) and -2^{w-1}.
    return -(1 << (width - 1)), (1 << (width - 1)) - 1
