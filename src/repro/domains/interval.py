"""Unsigned and signed interval domains, kernel `bpf_reg_state`-style.

The Linux BPF verifier tracks, alongside the tnum, unsigned bounds
``[umin, umax]`` and signed bounds ``[smin, smax]`` for every scalar
register.  The tnum domain alone cannot represent contiguous ranges
precisely (e.g. ``[3, 5]`` abstracts to ``0µµ`` ⊇ {0..7} over 3 bits), so
the two domains cooperate (see :mod:`repro.domains.product`).

This module implements the unsigned interval lattice with the abstract
transformers the verifier needs: add/sub/mul with wraparound-aware
widening to ⊤, exact bitwise bounds (the Hacker's Delight ``minOR`` /
``maxAND`` family, the interval analogue of the kernel's
``scalar_min_max_*`` known-bit reasoning), division/modulo bounds under
BPF's defined ``x/0 == 0`` / ``x%0 == x`` semantics, and branch
refinement for the BPF conditional jumps (``<``, ``<=``, ``>``, ``>=``,
``==``, ``!=`` in both signednesses).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tnum import Tnum, mask_for_width

__all__ = [
    "Interval",
    "signed_bounds",
    "to_signed",
    "to_unsigned",
    "min_and",
    "max_and",
    "min_or",
    "max_or",
    "min_xor",
    "max_xor",
]


# -- exact bitwise bounds (Hacker's Delight §4-3) -------------------------------
#
# Each function returns the exact minimum/maximum of ``x <op> y`` over all
# ``x ∈ [a, b]`` and ``y ∈ [c, d]`` (unsigned).  The scan walks bits high
# to low looking for the first position where raising a lower bound (or
# lowering an upper bound) buys freedom in the other operand; exactness
# is exhaustively checked against brute force in the test suite.


def min_or(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact minimum of ``x | y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if ~a & c & m:
            t = (a | m) & ~(m - 1)
            if t <= b:
                a = t
                break
        elif a & ~c & m:
            t = (c | m) & ~(m - 1)
            if t <= d:
                c = t
                break
        m >>= 1
    return a | c


def max_or(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact maximum of ``x | y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if b & d & m:
            t = (b - m) | (m - 1)
            if t >= a:
                b = t
                break
            t = (d - m) | (m - 1)
            if t >= c:
                d = t
                break
        m >>= 1
    return b | d


def min_and(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact minimum of ``x & y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if ~a & ~c & m:
            t = (a | m) & ~(m - 1)
            if t <= b:
                a = t
                break
            t = (c | m) & ~(m - 1)
            if t <= d:
                c = t
                break
        m >>= 1
    return a & c


def max_and(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact maximum of ``x & y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if b & ~d & m:
            t = (b & ~m) | (m - 1)
            if t >= a:
                b = t
                break
        elif ~b & d & m:
            t = (d & ~m) | (m - 1)
            if t >= c:
                d = t
                break
        m >>= 1
    return b & d


def min_xor(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact minimum of ``x ^ y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if ~a & c & m:
            t = (a | m) & ~(m - 1)
            if t <= b:
                a = t
        elif a & ~c & m:
            t = (c | m) & ~(m - 1)
            if t <= d:
                c = t
        m >>= 1
    return a ^ c


def max_xor(a: int, b: int, c: int, d: int, width: int) -> int:
    """Exact maximum of ``x ^ y`` for ``x ∈ [a, b]``, ``y ∈ [c, d]``."""
    m = 1 << (width - 1)
    while m:
        if b & d & m:
            t = (b - m) | (m - 1)
            if t >= a:
                b = t
            else:
                t = (d - m) | (m - 1)
                if t >= c:
                    d = t
        m >>= 1
    return b ^ d


def to_signed(x: int, width: int) -> int:
    """Reinterpret an unsigned width-bit pattern as two's complement."""
    sign = 1 << (width - 1)
    return x - (1 << width) if x & sign else x


def to_unsigned(x: int, width: int) -> int:
    """Reduce a signed value into its unsigned width-bit pattern."""
    return x & mask_for_width(width)


#: Interned ⊤ / ⊥ per width, and small constants per (value, width) —
#: the verifier constructs these on every transfer, and immutability
#: makes the shared instances safe.
_TOP: Dict[int, "Interval"] = {}
_BOTTOM: Dict[int, "Interval"] = {}
_CONST_CACHE: Dict[Tuple[int, int], "Interval"] = {}
_CONST_CACHE_MAX = 256


class Interval:
    """An unsigned interval ``[umin, umax]`` over width-bit words.

    ``umin > umax`` is normalized to the canonical bottom (empty) interval.
    The signed view is derived on demand (:meth:`smin` / :meth:`smax`),
    mirroring how the kernel keeps both bound families in sync.

    Implemented as an immutable ``__slots__`` class (not a frozen
    dataclass): interval construction sits on the verifier's transfer-
    function hot path, and the dataclass machinery (``__post_init__``
    dispatch, generated ``__init__``) is measurable overhead there.
    ⊤ and ⊥ are interned per width — immutability makes sharing safe.
    """

    __slots__ = ("umin", "umax", "width")

    umin: int
    umax: int
    width: int

    def __init__(self, umin: int, umax: int, width: int = 64) -> None:
        limit = mask_for_width(width)
        if not (0 <= umin <= limit and 0 <= umax <= limit):
            if umin <= umax:  # genuine out-of-range, not bottom
                raise ValueError(
                    f"bounds [{umin}, {umax}] out of width-{width} range"
                )
        object.__setattr__(self, "umin", umin)
        object.__setattr__(self, "umax", umax)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Interval instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return (
            self.umin == other.umin
            and self.umax == other.umax
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.umin, self.umax, self.width))

    def __repr__(self) -> str:
        return (
            f"Interval(umin={self.umin}, umax={self.umax}, "
            f"width={self.width})"
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def top(cls, width: int = 64) -> "Interval":
        cached = _TOP.get(width)
        if cached is None:
            cached = _TOP[width] = cls(0, mask_for_width(width), width)
        return cached

    @classmethod
    def bottom(cls, width: int = 64) -> "Interval":
        cached = _BOTTOM.get(width)
        if cached is None:
            cached = _BOTTOM[width] = cls(1, 0, width)
        return cached

    @classmethod
    def const(cls, value: int, width: int = 64) -> "Interval":
        v = value & mask_for_width(width)
        if v < _CONST_CACHE_MAX:
            cached = _CONST_CACHE.get((v, width))
            if cached is None:
                cached = _CONST_CACHE[(v, width)] = cls(v, v, width)
            return cached
        return cls(v, v, width)

    @classmethod
    def from_tnum(cls, t: Tnum) -> "Interval":
        """Tightest interval containing γ(t): ``[t.value, t.value|t.mask]``."""
        if t.is_bottom():
            return cls.bottom(t.width)
        return cls(t.min_value(), t.max_value(), t.width)

    # -- predicates ----------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.umin > self.umax

    def is_top(self) -> bool:
        return self.umin == 0 and self.umax == mask_for_width(self.width)

    def is_const(self) -> bool:
        return self.umin == self.umax

    def contains(self, value: int) -> bool:
        value &= mask_for_width(self.width)
        return self.umin <= value <= self.umax

    def cardinality(self) -> int:
        if self.is_bottom():
            return 0
        return self.umax - self.umin + 1

    # -- signed view -----------------------------------------------------------

    def smin(self) -> int:
        """Best signed lower bound derivable from the unsigned bounds."""
        lo, hi = signed_bounds(self.umin, self.umax, self.width)
        return lo

    def smax(self) -> int:
        """Best signed upper bound derivable from the unsigned bounds."""
        lo, hi = signed_bounds(self.umin, self.umax, self.width)
        return hi

    # -- lattice -----------------------------------------------------------

    def leq(self, other: "Interval") -> bool:
        self._check(other)
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return other.umin <= self.umin and self.umax <= other.umax

    def join(self, other: "Interval") -> "Interval":
        self._check(other)
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return Interval(
            min(self.umin, other.umin), max(self.umax, other.umax), self.width
        )

    def meet(self, other: "Interval") -> "Interval":
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        lo = max(self.umin, other.umin)
        hi = min(self.umax, other.umax)
        if lo > hi:
            return Interval.bottom(self.width)
        return Interval(lo, hi, self.width)

    def _check(self, other: "Interval") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    # -- transformers --------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        """Abstract addition, wraparound-aware.

        Exact unless the sum *may* overflow: when every pair overflows the
        wrapped bounds are still contiguous, so only the mixed case widens
        to ⊤.
        """
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        limit = mask_for_width(self.width)
        lo = self.umin + other.umin
        hi = self.umax + other.umax
        if hi <= limit:
            return Interval(lo, hi, self.width)
        if lo > limit:
            return Interval(lo - limit - 1, hi - limit - 1, self.width)
        return Interval.top(self.width)

    def sub(self, other: "Interval") -> "Interval":
        """Abstract subtraction, wraparound-aware.

        Exact unless the difference *may* underflow: all-pairs underflow
        (``self.umax < other.umin``) wraps to a contiguous high range;
        only the mixed case widens to ⊤.
        """
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        lo = self.umin - other.umax
        hi = self.umax - other.umin
        if lo >= 0:
            return Interval(lo, hi, self.width)
        if hi < 0:
            wrap = mask_for_width(self.width) + 1
            return Interval(lo + wrap, hi + wrap, self.width)
        return Interval.top(self.width)

    def mul(self, other: "Interval") -> "Interval":
        """Abstract multiplication; widens to ⊤ on possible overflow."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        limit = mask_for_width(self.width)
        hi = self.umax * other.umax
        if hi > limit:
            return Interval.top(self.width)
        return Interval(self.umin * other.umin, hi, self.width)

    def neg(self) -> "Interval":
        """Abstract negation (``0 - x``); exact when 0 is excluded.

        For ``0 < umin <= umax`` negation reverses the range within the
        high wraparound band; a range containing 0 alongside other values
        negates to {0} ∪ [2^w - umax, 2^w - 1], whose hull is ⊤.
        """
        if self.is_bottom():
            return self
        if self.is_const():
            return Interval.const(-self.umin, self.width)
        if self.umin > 0:
            wrap = mask_for_width(self.width) + 1
            return Interval(wrap - self.umax, wrap - self.umin, self.width)
        return Interval.top(self.width)

    # -- bitwise transformers (exact) -----------------------------------------

    def and_(self, other: "Interval") -> "Interval":
        """Exact abstract bitwise AND (Hacker's Delight bounds)."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        args = (self.umin, self.umax, other.umin, other.umax, self.width)
        return Interval(min_and(*args), max_and(*args), self.width)

    def or_(self, other: "Interval") -> "Interval":
        """Exact abstract bitwise OR (Hacker's Delight bounds)."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        args = (self.umin, self.umax, other.umin, other.umax, self.width)
        return Interval(min_or(*args), max_or(*args), self.width)

    def xor(self, other: "Interval") -> "Interval":
        """Exact abstract bitwise XOR (Hacker's Delight bounds)."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        args = (self.umin, self.umax, other.umin, other.umax, self.width)
        return Interval(min_xor(*args), max_xor(*args), self.width)

    # -- division transformers (BPF semantics: x/0 == 0, x%0 == x) ------------

    def udiv(self, other: "Interval") -> "Interval":
        """Abstract unsigned division.

        With a nonzero divisor the quotient is monotone in both operands:
        ``[umin // div_umax, umax // div_umin]``.  A possibly-zero divisor
        contributes 0 results (BPF defines ``x / 0 == 0``), and the
        smallest nonzero divisor 1 leaves the dividend intact, so the
        bounds become ``[0, umax]``.
        """
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        if other.umax == 0:
            return Interval.const(0, self.width)
        if other.umin == 0:
            return Interval(0, self.umax, self.width)
        return Interval(
            self.umin // other.umax, self.umax // other.umin, self.width
        )

    def umod(self, other: "Interval") -> "Interval":
        """Abstract unsigned modulo.

        The remainder never exceeds the dividend (``x % 0 == x`` included),
        so ``umax`` always bounds it; a provably-nonzero divisor caps it
        further at ``div_umax - 1``, and a dividend provably below the
        divisor passes through unchanged.
        """
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return Interval.bottom(self.width)
        if other.umax == 0:
            return self  # divisor is constant 0: identity
        if other.umin == 0:
            return Interval(0, self.umax, self.width)
        if self.umax < other.umin:
            return self  # dividend always below divisor: identity
        return Interval(0, min(self.umax, other.umax - 1), self.width)

    # -- shift transformers ---------------------------------------------------

    def lshift(self, shift: int) -> "Interval":
        """Abstract left shift by a constant; ⊤ on possible overflow."""
        if self.is_bottom():
            return self
        hi = self.umax << shift
        if hi <= mask_for_width(self.width):
            return Interval(self.umin << shift, hi, self.width)
        return Interval.top(self.width)

    def rshift(self, shift: int) -> "Interval":
        """Abstract logical right shift by a constant (exact: monotone)."""
        if self.is_bottom():
            return self
        return Interval(self.umin >> shift, self.umax >> shift, self.width)

    # -- branch refinement -----------------------------------------------------

    def refine_ult(self, bound: int) -> "Interval":
        """Assume ``self < bound`` (unsigned)."""
        if bound == 0:
            return Interval.bottom(self.width)
        return self.meet(Interval(0, bound - 1, self.width))

    def refine_ule(self, bound: int) -> "Interval":
        """Assume ``self <= bound`` (unsigned)."""
        return self.meet(Interval(0, bound, self.width))

    def refine_ugt(self, bound: int) -> "Interval":
        """Assume ``self > bound`` (unsigned)."""
        limit = mask_for_width(self.width)
        if bound == limit:
            return Interval.bottom(self.width)
        return self.meet(Interval(bound + 1, limit, self.width))

    def refine_uge(self, bound: int) -> "Interval":
        """Assume ``self >= bound`` (unsigned)."""
        return self.meet(Interval(bound, mask_for_width(self.width), self.width))

    def refine_eq(self, bound: int) -> "Interval":
        """Assume ``self == bound``."""
        return self.meet(Interval.const(bound, self.width))

    def refine_ne(self, bound: int) -> "Interval":
        """Assume ``self != bound`` — shrinks only at the edges."""
        if self.is_bottom():
            return self
        b = bound & mask_for_width(self.width)
        if self.is_const() and self.umin == b:
            return Interval.bottom(self.width)
        if self.umin == b:
            return Interval(self.umin + 1, self.umax, self.width)
        if self.umax == b:
            return Interval(self.umin, self.umax - 1, self.width)
        return self

    # -- conversion -----------------------------------------------------------

    def to_tnum(self) -> Tnum:
        """The tightest tnum covering this range (kernel ``tnum_range``)."""
        if self.is_bottom():
            return Tnum.bottom(self.width)
        return Tnum.range(self.umin, self.umax, self.width)

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        return f"[{self.umin}, {self.umax}]u{self.width}"


def signed_bounds(umin: int, umax: int, width: int) -> Tuple[int, int]:
    """Best signed bounds for the unsigned range ``[umin, umax]``.

    If the range stays within one sign half it maps directly; if it
    straddles the sign boundary the signed range covers the full signed
    span of the straddled region.
    """
    sign = 1 << (width - 1)
    if umax < sign or umin >= sign:
        # All non-negative, or all negative: order-preserving.
        return to_signed(umin, width), to_signed(umax, width)
    # Straddles: contains both 2^{w-1}-1 (max signed) and -2^{w-1}.
    return -(1 << (width - 1)), (1 << (width - 1)) - 1
