"""Companion abstract domains used by the BPF verifier substrate.

* :class:`Interval` — unsigned range domain (kernel ``umin``/``umax``).
* :class:`KnownBits` — LLVM-style encoding, isomorphic to tnums.
* :class:`ScalarValue` — reduced product tnum × interval, the verifier's
  per-register scalar state.
"""

from .interval import Interval, signed_bounds, to_signed, to_unsigned
from .known_bits import KnownBits
from .product import ScalarValue
from .signed_interval import SignedInterval, deduce_bounds

__all__ = [
    "Interval",
    "KnownBits",
    "ScalarValue",
    "SignedInterval",
    "deduce_bounds",
    "signed_bounds",
    "to_signed",
    "to_unsigned",
]
