"""Signed interval domain and kernel-style bounds deduction.

The BPF verifier tracks *both* unsigned (``umin``/``umax``) and signed
(``smin``/``smax``) bounds per register, because each comparison family
refines only its own view: ``jlt`` narrows unsigned bounds, ``jslt``
signed ones.  The kernel's ``__reg_deduce_bounds`` then propagates
information between the two views and the tnum.

This module provides the signed lattice (over two's-complement
``width``-bit values) with sound transformers and refinements, plus
:func:`deduce_bounds`, which mirrors the kernel's mutual refinement:

* when a signed range lies entirely within one sign half, it maps to an
  unsigned range (and vice versa) — each can tighten the other;
* a tnum bounds both views through its min/max values.

Transfer-function architecture
------------------------------
Unlike the kernel, which stores ``smin``/``smax`` alongside
``umin``/``umax`` in every register, the reduced product
(:mod:`repro.domains.product`) keeps only tnum × unsigned bounds and
*derives* the signed view on demand.  Under that architecture the
bitwise and division operators need no dedicated signed transfer: the
unsigned bounds for ``and``/``or``/``xor`` are exact on contiguous
unsigned ranges (Hacker's Delight §4-3, see
:mod:`repro.domains.interval`), so the signed view derived from the
exact unsigned result is at least as tight as any sign-half-split
computation, and BPF ``div``/``mod`` are unsigned operations outright.
The one operator where signedness is load-bearing is the arithmetic
right shift — monotone on the signed view, order-breaking on the
unsigned one — so :meth:`ScalarValue.arshift
<repro.domains.product.ScalarValue.arshift>` routes its interval through
:meth:`SignedInterval.arshift` via :meth:`from_unsigned` /
:meth:`to_unsigned`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.tnum import Tnum

from .interval import Interval, to_signed, to_unsigned

__all__ = ["SignedInterval", "deduce_bounds"]

#: Interned ⊤ / ⊥ per width (see :class:`Interval` for rationale).
_TOP: Dict[int, "SignedInterval"] = {}
_BOTTOM: Dict[int, "SignedInterval"] = {}


class SignedInterval:
    """A signed interval ``[smin, smax]`` over two's-complement words.

    Immutable ``__slots__`` class with interned ⊤/⊥ — the arithmetic
    right shift and every signed branch refinement construct these on
    the verifier's hot path.
    """

    __slots__ = ("smin", "smax", "width")

    smin: int
    smax: int
    width: int

    def __init__(self, smin: int, smax: int, width: int = 64) -> None:
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if smin <= smax and not (lo <= smin and smax <= hi):
            raise ValueError(
                f"bounds [{smin}, {smax}] exceed s{width}"
            )
        object.__setattr__(self, "smin", smin)
        object.__setattr__(self, "smax", smax)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SignedInterval instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedInterval):
            return NotImplemented
        return (
            self.smin == other.smin
            and self.smax == other.smax
            and self.width == other.width
        )

    def __hash__(self) -> int:
        return hash((self.smin, self.smax, self.width))

    def __repr__(self) -> str:
        return (
            f"SignedInterval(smin={self.smin}, smax={self.smax}, "
            f"width={self.width})"
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def top(cls, width: int = 64) -> "SignedInterval":
        cached = _TOP.get(width)
        if cached is None:
            cached = _TOP[width] = cls(
                -(1 << (width - 1)), (1 << (width - 1)) - 1, width
            )
        return cached

    @classmethod
    def bottom(cls, width: int = 64) -> "SignedInterval":
        cached = _BOTTOM.get(width)
        if cached is None:
            cached = _BOTTOM[width] = cls(1, 0, width)
        return cached

    @classmethod
    def const(cls, value: int, width: int = 64) -> "SignedInterval":
        signed = to_signed(to_unsigned(value, width), width)
        return cls(signed, signed, width)

    @classmethod
    def from_tnum(cls, t: Tnum) -> "SignedInterval":
        """Tightest signed interval containing γ(t).

        If the sign bit is known, γ(t) sits in one sign half and the
        unsigned min/max map monotonically; with an unknown sign bit both
        halves are populated and the extremes come from fixing the sign
        bit each way.
        """
        if t.is_bottom():
            return cls.bottom(t.width)
        sign = 1 << (t.width - 1)
        if not t.mask & sign:
            # Sign bit known: order-preserving mapping.
            return cls(
                to_signed(t.min_value(), t.width),
                to_signed(t.max_value(), t.width),
                t.width,
            )
        # Sign bit unknown: most negative has sign=1, others minimal;
        # most positive has sign=0, others maximal.
        lo = to_signed(t.min_value() | sign, t.width)
        hi = to_signed(t.max_value() & ~sign, t.width)
        return cls(lo, hi, t.width)

    # -- predicates ----------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.smin > self.smax

    def is_const(self) -> bool:
        return self.smin == self.smax

    def contains(self, value: int) -> bool:
        signed = to_signed(to_unsigned(value, self.width), self.width)
        return self.smin <= signed <= self.smax

    def cardinality(self) -> int:
        return 0 if self.is_bottom() else self.smax - self.smin + 1

    # -- lattice ----------------------------------------------------------------------

    def _check(self, other: "SignedInterval") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    def leq(self, other: "SignedInterval") -> bool:
        self._check(other)
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return other.smin <= self.smin and self.smax <= other.smax

    def join(self, other: "SignedInterval") -> "SignedInterval":
        self._check(other)
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return SignedInterval(
            min(self.smin, other.smin), max(self.smax, other.smax), self.width
        )

    def meet(self, other: "SignedInterval") -> "SignedInterval":
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return SignedInterval.bottom(self.width)
        lo = max(self.smin, other.smin)
        hi = min(self.smax, other.smax)
        if lo > hi:
            return SignedInterval.bottom(self.width)
        return SignedInterval(lo, hi, self.width)

    # -- transformers --------------------------------------------------------------------

    def add(self, other: "SignedInterval") -> "SignedInterval":
        """Abstract addition; widens to ⊤ on possible signed overflow."""
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return SignedInterval.bottom(self.width)
        lo = self.smin + other.smin
        hi = self.smax + other.smax
        bound = 1 << (self.width - 1)
        if lo < -bound or hi >= bound:
            return SignedInterval.top(self.width)
        return SignedInterval(lo, hi, self.width)

    def sub(self, other: "SignedInterval") -> "SignedInterval":
        self._check(other)
        if self.is_bottom() or other.is_bottom():
            return SignedInterval.bottom(self.width)
        lo = self.smin - other.smax
        hi = self.smax - other.smin
        bound = 1 << (self.width - 1)
        if lo < -bound or hi >= bound:
            return SignedInterval.top(self.width)
        return SignedInterval(lo, hi, self.width)

    def neg(self) -> "SignedInterval":
        if self.is_bottom():
            return self
        bound = 1 << (self.width - 1)
        if self.smin == -bound:
            # -INT_MIN overflows back to INT_MIN.
            return SignedInterval.top(self.width)
        return SignedInterval(-self.smax, -self.smin, self.width)

    def arshift(self, shift: int) -> "SignedInterval":
        """Arithmetic right shift preserves order (floor division)."""
        if self.is_bottom():
            return self
        return SignedInterval(self.smin >> shift, self.smax >> shift, self.width)

    # -- refinement ------------------------------------------------------------------------

    def refine_slt(self, bound: int) -> "SignedInterval":
        """Assume ``self < bound`` (signed)."""
        return self.meet(SignedInterval(
            -(1 << (self.width - 1)), bound - 1, self.width
        )) if bound > -(1 << (self.width - 1)) else SignedInterval.bottom(self.width)

    def refine_sle(self, bound: int) -> "SignedInterval":
        return self.meet(SignedInterval(
            -(1 << (self.width - 1)), bound, self.width
        ))

    def refine_sgt(self, bound: int) -> "SignedInterval":
        hi = (1 << (self.width - 1)) - 1
        if bound >= hi:
            return SignedInterval.bottom(self.width)
        return self.meet(SignedInterval(bound + 1, hi, self.width))

    def refine_sge(self, bound: int) -> "SignedInterval":
        return self.meet(SignedInterval(
            bound, (1 << (self.width - 1)) - 1, self.width
        ))

    # -- conversions ------------------------------------------------------------------------

    def to_unsigned(self) -> Interval:
        """Best unsigned interval (kernel's signed→unsigned deduction).

        If the range stays within one sign half, the mapping is exact;
        straddling zero forces the full unsigned range.
        """
        if self.is_bottom():
            return Interval.bottom(self.width)
        if self.smin >= 0 or self.smax < 0:
            return Interval(
                to_unsigned(self.smin, self.width),
                to_unsigned(self.smax, self.width),
                self.width,
            )
        return Interval.top(self.width)

    @classmethod
    def from_unsigned(cls, iv: Interval) -> "SignedInterval":
        """Best signed interval for an unsigned range."""
        if iv.is_bottom():
            return cls.bottom(iv.width)
        return cls(iv.smin(), iv.smax(), iv.width)

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        return f"[{self.smin}, {self.smax}]s{self.width}"


def deduce_bounds(
    t: Tnum, unsigned: Interval, signed: SignedInterval
) -> Tuple[Tnum, Interval, SignedInterval]:
    """Mutual refinement of tnum × unsigned × signed views.

    The kernel's ``__update_reg_bounds`` / ``__reg_deduce_bounds`` cycle:

    1. tnum tightens both interval views;
    2. each interval view maps into the other where the sign-half
       condition allows;
    3. the unsigned view tightens the tnum via its shared-prefix range.

    Iterates once (the kernel does the same; a fixpoint would need at
    most a couple of rounds and one round already recovers the cases the
    verifier relies on).
    """
    from repro.core.lattice import meet as tnum_meet

    width = t.width
    if t.is_bottom() or unsigned.is_bottom() or signed.is_bottom():
        return (
            Tnum.bottom(width),
            Interval.bottom(width),
            SignedInterval.bottom(width),
        )

    # 1. tnum -> intervals.
    unsigned = unsigned.meet(Interval.from_tnum(t))
    signed = signed.meet(SignedInterval.from_tnum(t))

    # 2. cross-view exchange.
    signed = signed.meet(SignedInterval.from_unsigned(unsigned))
    unsigned = unsigned.meet(signed.to_unsigned())

    # 3. intervals -> tnum.
    if unsigned.is_bottom() or signed.is_bottom():
        return (
            Tnum.bottom(width),
            Interval.bottom(width),
            SignedInterval.bottom(width),
        )
    t = tnum_meet(t, unsigned.to_tnum())
    if t.is_bottom():
        return (
            Tnum.bottom(width),
            Interval.bottom(width),
            SignedInterval.bottom(width),
        )
    return t, unsigned, signed
