#!/usr/bin/env python3
"""CI smoke client for `repro serve` — stdlib urllib only.

Drives a running verification service end to end: a good program over
both wire and JSON encodings, malformed submissions, the verdict-lookup
and stats endpoints.  Shape assertions are tolerant (required keys and
types only) so additive response fields never break this script.

Usage: service_smoke.py [BASE_URL]   (default http://127.0.0.1:8737)
"""

import json
import sys
import urllib.error
import urllib.request

# mov r0, 0 ; exit — the smallest accepted program, in kernel wire format.
GOOD_WIRE = bytes.fromhex("b700000000000000" "9500000000000000")


def request(base, path, data=None, content_type=None):
    headers = {"Content-Type": content_type} if content_type else {}
    req = urllib.request.Request(base + path, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_wire(base, body, path="/verify"):
    return request(base, path, body, "application/octet-stream")


def post_json(base, payload, path="/verify"):
    return request(base, path, json.dumps(payload).encode(),
                   "application/json")


def check(label, condition, context):
    if not condition:
        print(f"FAIL {label}: {context}")
        sys.exit(1)
    print(f"ok   {label}")


def check_verdict_shape(label, body):
    for key, kind in (
        ("schema_version", int), ("canonical_hash", str), ("ctx_size", int),
        ("verdict", str), ("ok", bool), ("insns_processed", int),
        ("cached", bool),
    ):
        check(f"{label}: {key} is {kind.__name__}",
              isinstance(body.get(key), kind), body)


def check_error_shape(label, body):
    error = body.get("error", {})
    check(f"{label}: error code/message",
          isinstance(error.get("code"), str)
          and isinstance(error.get("message"), str), body)


def main():
    base = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8737"

    status, body = request(base, "/healthz")
    check("healthz", status == 200 and body.get("status") == "ok", body)

    # Cold submission: raw wire bytes.
    status, cold = post_wire(base, GOOD_WIRE)
    check("wire POST status", status == 200, (status, cold))
    check_verdict_shape("wire POST", cold)
    check("wire POST accepts",
          cold["verdict"] == "accept" and cold["ok"] is True, cold)
    check("cold is uncached", cold["cached"] is False, cold)

    # Warm repeat via the JSON encoding: same canonical program, so the
    # service must answer from the verdict cache.
    status, warm = post_json(base, {"program_hex": GOOD_WIRE.hex()})
    check("json POST status", status == 200, (status, warm))
    check_verdict_shape("json POST", warm)
    check("warm repeat is cached", warm["cached"] is True, warm)
    check("hashes agree",
          warm["canonical_hash"] == cold["canonical_hash"], (cold, warm))

    # Malformed submissions: undecodable -> 400, unacceptable -> 422.
    status, body = post_wire(base, b"\xde\xad\xbe\xef")
    check("truncated wire -> 400", status == 400, (status, body))
    check_error_shape("truncated wire", body)

    status, body = request(base, "/verify", b"{not json",
                           "application/json")
    check("bad json -> 400", status == 400, (status, body))
    check_error_shape("bad json", body)

    status, body = post_json(
        base, {"program_hex": GOOD_WIRE.hex(), "ctx_size": "enormous"})
    check("bad ctx_size -> 422", status == 422, (status, body))
    check_error_shape("bad ctx_size", body)

    # Verdict lookup by canonical hash.
    status, body = request(base, f"/verdict/{cold['canonical_hash']}")
    check("verdict lookup", status == 200 and body["cached"] is True, body)
    status, body = request(base, "/verdict/" + "0" * 64)
    check("unknown verdict -> 404", status == 404, (status, body))

    # Stats: one verification, at least one cache hit, rejections counted.
    status, stats = request(base, "/stats")
    check("stats status", status == 200, status)
    service = stats.get("service", {})
    check("stats: one verification",
          service.get("verifications") == 1, service)
    check("stats: cache hits > 0",
          service.get("cache", {}).get("hits", 0) > 0, service)
    check("stats: rejections counted",
          service.get("rejections", 0) >= 2, service)

    # Prometheus exposition.
    req = urllib.request.Request(base + "/metrics")
    with urllib.request.urlopen(req, timeout=10) as response:
        text = response.read().decode()
    check("metrics exposition",
          "repro_api_requests_total" in text
          and "repro_api_cache_hits_total" in text,
          text.splitlines()[:5])

    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
