#!/usr/bin/env python3
"""CI smoke for distributed campaigns — stdlib only.

Drives the full fault matrix the coordinator/worker protocol promises
to absorb, then requires the merged report to be *byte-identical* to a
single-machine fault-free run:

1. baseline: `repro campaign` (one process, no faults) -> baseline.json
2. distributed: `repro coordinate` + 2 `repro work` processes on
   loopback, with the workers running under injected crashes
   (`campaign.worker.crash`, real `os._exit` kills — dead workers are
   respawned) and duplicated result POSTs (`dist.result.duplicate=1`,
   every result submitted twice);
3. mid-round, the coordinator is SIGKILLed and restarted on the same
   state directory and port — workers ride the outage out on their RPC
   retry loop;
4. the restarted coordinator finishes and writes dist.json, which must
   `cmp` equal baseline.json.

Worker exit codes are deliberately NOT asserted: a worker that loses
its final poll race against coordinator shutdown exits nonzero by
design.  Only the coordinator's exit code and the report bytes gate.

Usage: dist_smoke.py [WORKDIR]   (default: dist-smoke/)
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 8351
SPEC = [
    "--budget", "60", "--rounds", "2", "--seed", "42",
    "--max-insns", "12", "--inputs", "4", "--no-shrink",
]
WORKER_FAULTS = "seed=5,campaign.worker.crash=0.15,dist.result.duplicate=1"


def log(message):
    print(f"dist-smoke: {message}", flush=True)


def fail(message):
    print(f"FAIL {message}", flush=True)
    sys.exit(1)


def repro(*args):
    return [sys.executable, "-m", "repro", *args]


def start_coordinator(workdir, logfile):
    command = repro(
        "coordinate", *SPEC,
        "--state", str(workdir / "state"),
        "--port", str(PORT),
        "--batch-size", "4",
        "--lease-timeout", "5", "--heartbeat-timeout", "10",
        "--report", str(workdir / "dist.json"),
    )
    return subprocess.Popen(
        command, stdout=open(logfile, "a"), stderr=subprocess.STDOUT,
    )


def start_worker(name, workdir):
    command = repro(
        "work", f"http://127.0.0.1:{PORT}",
        "--name", name, "--poll-interval", "0.1",
        "--faults", WORKER_FAULTS,
    )
    return subprocess.Popen(
        command,
        stdout=open(workdir / f"{name}.log", "a"),
        stderr=subprocess.STDOUT,
    )


def get_stats():
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{PORT}/stats", timeout=5
        ) as response:
            return json.loads(response.read())
    except (urllib.error.URLError, OSError, ValueError):
        return None


def main():
    workdir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "dist-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    baseline = workdir / "baseline.json"
    coordinator_log = workdir / "coordinator.log"

    log("building single-machine fault-free baseline")
    subprocess.run(
        repro("campaign", *SPEC, "--report", str(baseline)),
        check=True, stdout=subprocess.DEVNULL,
    )

    log(f"starting coordinator on :{PORT} + 2 chaos workers")
    coordinator = start_coordinator(workdir, coordinator_log)
    workers = {f"w{i}": start_worker(f"w{i}", workdir) for i in (1, 2)}
    respawns = 0
    observed = {}          # high-water marks of /stats counters
    killed_coordinator = False
    deadline = time.time() + 900

    try:
        while coordinator.poll() is None:
            if time.time() > deadline:
                fail("smoke did not converge within 900s")
            time.sleep(1.0)

            stats = get_stats()
            if stats:
                for name, value in stats.get("counters", {}).items():
                    observed[name] = max(observed.get(name, 0), value)

            # SIGKILL the coordinator once real progress is visible,
            # then resume it on the same state dir and port.
            if (
                not killed_coordinator
                and observed.get("results_merged", 0) >= 2
                and coordinator.poll() is None
            ):
                log("SIGKILL coordinator mid-round; restarting")
                coordinator.send_signal(signal.SIGKILL)
                coordinator.wait(timeout=30)
                killed_coordinator = True
                time.sleep(1.0)   # let the kernel release the port
                coordinator = start_coordinator(workdir, coordinator_log)

            # Respawn injected-crash worker casualties while the
            # campaign is still running.
            for name, process in list(workers.items()):
                if process.poll() is not None and coordinator.poll() is None:
                    respawns += 1
                    workers[name] = start_worker(name, workdir)
    finally:
        for process in workers.values():
            if process.poll() is None:
                process.terminate()
        for process in workers.values():
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
        if coordinator.poll() is None:
            coordinator.terminate()
            coordinator.wait(timeout=60)

    if coordinator.returncode != 0:
        fail(f"coordinator exited {coordinator.returncode} "
             f"(see {coordinator_log})")
    if not killed_coordinator:
        fail("campaign finished before the coordinator could be killed "
             "— raise --budget so the SIGKILL lands mid-round")
    if respawns < 1:
        fail("no worker was ever killed — injected crashes did not fire")
    if observed.get("results_duplicate", 0) < 1:
        fail(f"no duplicate result was ever ingested: {observed}")
    log(f"chaos happened: {respawns} worker respawn(s), counters {observed}")

    plain = baseline.read_bytes()
    dist = (workdir / "dist.json").read_bytes()
    if plain != dist:
        fail("distributed report differs from single-machine baseline")
    log(f"reports byte-identical ({len(plain)} bytes) "
        "under kills, duplicates, and coordinator SIGKILL+resume")


if __name__ == "__main__":
    main()
