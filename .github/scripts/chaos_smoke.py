#!/usr/bin/env python3
"""CI chaos client for `repro serve` — stdlib urllib only.

Drives a service booted with injected verification hangs
(`service.verify.hang`), a queue bound, and a request deadline, and
asserts the *structured* degradation answers: 503 + `Retry-After` when
the queue is full, 504 when the deadline blows, `/healthz` live
throughout, shed/timeout counters in `/stats` and `/metrics`.

Usage: chaos_smoke.py [BASE_URL]   (default http://127.0.0.1:8739)
"""

import json
import struct
import sys
import threading
import urllib.error
import urllib.request

EXIT = bytes.fromhex("9500000000000000")


def program(i):
    """`mov r0, i ; exit` in kernel wire format — distinct per i, so
    single-flight dedup can't collapse concurrent submissions."""
    return struct.pack("<BBhi", 0xB7, 0, 0, i) + EXIT


def request(base, path, data=None, content_type=None, timeout=30):
    headers = {"Content-Type": content_type} if content_type else {}
    req = urllib.request.Request(base + path, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def check(label, condition, context):
    if not condition:
        print(f"FAIL {label}: {context}")
        sys.exit(1)
    print(f"ok   {label}")


def main():
    base = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8739"

    status, _, body = request(base, "/healthz")
    check("healthz before chaos", status == 200, (status, body))

    # Four concurrent distinct programs against workers=1, max-queue=1,
    # and a hang on every verification: the queue fills instantly, so
    # some submissions must shed (503) and the rest must hit the
    # request deadline (504).  Nothing may 200 and nothing may 500.
    answers = {}
    lock = threading.Lock()

    def submit(i):
        status, headers, body = request(
            base, "/verify", program(i), "application/octet-stream")
        with lock:
            answers[i] = (status, headers, body)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    # While the pool is saturated, liveness must not queue behind it.
    status, _, body = request(base, "/healthz", timeout=5)
    check("healthz during chaos", status == 200, (status, body))
    for t in threads:
        t.join(timeout=60)

    codes = sorted(status for status, _, _ in answers.values())
    check("all answered", len(answers) == 4, answers)
    check("some requests shed (503)", 503 in codes, codes)
    check("some requests timed out (504)", 504 in codes, codes)
    check("only 503/504 under saturation",
          set(codes) <= {503, 504}, codes)
    for status, headers, body in answers.values():
        if status == 503:
            check("503 is structured",
                  body.get("error", {}).get("code") == "overloaded", body)
            check("503 carries Retry-After",
                  int(headers.get("Retry-After", 0)) >= 1, headers)
        else:
            check("504 is structured",
                  body.get("error", {}).get("code") == "deadline-exceeded",
                  body)
        check("error body is versioned",
              isinstance(body.get("schema_version"), int), body)

    status, _, stats = request(base, "/stats")
    service = stats.get("service", {})
    check("stats: shed counted", service.get("shed", 0) >= 1, service)
    check("stats: timeouts counted",
          service.get("timeouts", 0) >= 1, service)
    check("stats: limits visible",
          service.get("max_queue") == 1
          and service.get("request_timeout_s") is not None, service)

    with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
        text = response.read().decode()
    check("metrics: degradation counters",
          "repro_api_shed_total" in text
          and "repro_api_timeouts_total" in text,
          text.splitlines()[:5])

    status, _, body = request(base, "/healthz")
    check("healthz after chaos", status == 200, (status, body))

    print("chaos smoke: all checks passed")


if __name__ == "__main__":
    main()
