"""Table I: precision trend of our_mul vs kern_mul across bitwidths.

Paper setup: widths 5..10 exhaustively; observations — (1) the share of
identical outputs falls with width, (2) differing outputs stay almost
always comparable, (3, 4) our_mul wins a growing share of the comparable
differing outputs (75% at n=5 rising past 80% at n=10).

Here: widths 5..``REPRO_TABLE1_MAX`` (default 6; width 7 ≈ 23M multiplies
in pure Python — minutes).  Output: ``benchmarks/out/table1.txt``.
"""

from __future__ import annotations

import pytest

from repro.eval.precision import precision_trend
from repro.eval.report import render_table1

from .conftest import env_int, write_artifact

MAX_WIDTH = env_int("REPRO_TABLE1_MAX", 6)


def test_table1_trend(benchmark, out_dir):
    widths = list(range(5, MAX_WIDTH + 1))

    rows = benchmark.pedantic(
        precision_trend, args=(widths,), rounds=1, iterations=1
    )
    text = render_table1(rows)
    paper_note = (
        "\nPaper Table I (unordered pairs; ours are ordered, so 'differ'"
        "\ncounts double while every percentage matches):"
        "\n  n=5: differ 0.014%, comparable 100%, kern 25.000%, our 75.000%"
        "\n  n=6: differ 0.034%, comparable 100%, kern 22.778%, our 77.222%"
        "\n  n=7: differ 0.056%, comparable 100%, kern 21.537%, our 78.463%"
    )
    write_artifact(out_dir, "table1.txt", text + paper_note)

    # Reproduction targets.
    assert [r.width for r in rows] == widths
    for row in rows:
        assert row.comparable_pct == pytest.approx(100.0)
    if len(rows) >= 2:
        # equal% decreases, our-share increases with width.
        assert rows[1].equal_pct < rows[0].equal_pct
        assert rows[1].our_pct > rows[0].our_pct
    assert rows[0].our_pct == pytest.approx(75.0)
    if MAX_WIDTH >= 6:
        # Paper (unordered pairs): 77.222%. Ordered-pair counting shifts
        # the diagonal's weight slightly; we measure 77.135%.
        assert rows[1].our_pct == pytest.approx(77.222, abs=0.15)
