"""Benchmark-suite configuration.

Environment knobs (defaults keep each module to roughly a minute on a
laptop; raise them to approach the paper's full configuration):

* ``REPRO_FIG4_WIDTH``   — tnum width for the Figure 4 sweep (default 5;
  the paper uses 8, which takes hours in pure Python).
* ``REPRO_TABLE1_MAX``   — largest width for the Table I trend
  (default 6; the paper reaches 10).
* ``REPRO_FIG5_PAIRS``   — random 64-bit input pairs for Figure 5
  (default 2000; the paper uses 40 million).

Each benchmark regenerates its paper artifact and writes the rendered
text into ``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: Path, name: str, text: str) -> None:
    path = out_dir / name
    path.write_text(text + "\n")
    # Also surface in captured output for `pytest -s`.
    print(f"\n[artifact written: {path}]")
    print(text)
