"""Figure 4: precision CDF — our_mul vs kern_mul and vs bitwise_mul.

Paper setup: all 43M tnum pairs at width 8; ~80% of differing outputs are
more precise under our_mul, and our_mul/kern_mul agree on 99.92% of pairs.

Here: all pairs at ``REPRO_FIG4_WIDTH`` (default 5 → 59,049 pairs).  The
rendered CDFs and headline percentages land in ``benchmarks/out/fig4.txt``.
"""

from __future__ import annotations

import pytest

from repro.eval.precision import compare_precision, precision_cdf
from repro.eval.report import render_comparison, render_fig4

from .conftest import env_int, write_artifact

WIDTH = env_int("REPRO_FIG4_WIDTH", 5)


@pytest.fixture(scope="module")
def comparisons():
    return {
        "kern_mul": compare_precision("our_mul", "kern_mul", WIDTH),
        "bitwise_mul": compare_precision("our_mul", "bitwise_mul", WIDTH),
    }


def test_fig4_vs_kern_mul(benchmark):
    benchmark.pedantic(
        compare_precision, args=("our_mul", "kern_mul", 4),
        rounds=1, iterations=1,
    )


def test_fig4_vs_bitwise_mul(benchmark):
    benchmark.pedantic(
        compare_precision, args=("our_mul", "bitwise_mul", 4),
        rounds=1, iterations=1,
    )


def test_fig4_render(comparisons, out_dir, benchmark):
    def render():
        return render_fig4(
            {name: precision_cdf(c) for name, c in comparisons.items()},
            WIDTH,
        )

    figure = benchmark.pedantic(render, rounds=1, iterations=1)
    sections = [figure, ""]
    for name, c in comparisons.items():
        sections.append(render_comparison(c))
        sections.append("")
    write_artifact(out_dir, "fig4.txt", "\n".join(sections))

    # Reproduction targets (shape, not absolute numbers):
    kern = comparisons["kern_mul"]
    bitw = comparisons["bitwise_mul"]
    # vs kern_mul: when outputs differ, our_mul usually wins (paper ~80%).
    if kern.comparable:
        assert kern.a_more_precise / kern.comparable >= 0.5
    # vs bitwise_mul: our_mul dominates (paper: ~80% of differing
    # cases are more precise under our_mul; losses are a small tail).
    if bitw.comparable:
        assert bitw.a_more_precise / bitw.comparable >= 0.8
    # Agreement with kern_mul dominates (paper: 99.92% at n=8).
    assert kern.equal / kern.total_pairs > 0.99
