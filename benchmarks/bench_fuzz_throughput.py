"""Differential-fuzzing throughput benchmarks.

Campaign coverage is bounded by programs-checked-per-second, so the fuzz
pipeline's stages are benchmarked separately (generation, verification,
oracle replay) and end-to-end.  The summary artifact records
programs/sec for each opcode profile — the number to watch when
optimizing the oracle's hot loop.
"""

from __future__ import annotations

import time

import pytest

from repro.fuzz import (
    CampaignConfig,
    DifferentialOracle,
    generate_program,
    run_campaign,
)

from .conftest import write_artifact


def test_generation_only(benchmark):
    counter = iter(range(10**9))

    def generate_one():
        return generate_program(next(counter)).program

    program = benchmark(generate_one)
    assert program.insns[-1].is_exit()


@pytest.mark.parametrize("profile", ["mixed", "alu", "memory", "branchy"])
def test_oracle_single_program(benchmark, profile):
    gp = generate_program(7, profile=profile)
    oracle = DifferentialOracle(inputs_per_program=8)

    report = benchmark(oracle.check_program, gp.program, 7)
    assert report.ok


def test_campaign_end_to_end(benchmark):
    def campaign():
        return run_campaign(CampaignConfig(budget=50, seed=42))

    result = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert result.ok


def test_fuzz_throughput_summary(out_dir):
    lines = ["Differential fuzz throughput (programs/sec, budget 200):"]
    for profile in ("mixed", "alu", "memory", "branchy"):
        config = CampaignConfig(budget=200, seed=42, profile=profile)
        t0 = time.perf_counter()
        result = run_campaign(config)
        elapsed = time.perf_counter() - t0
        assert result.ok
        lines.append(
            f"  {profile:>8}: {result.stats.executed / elapsed:7.1f} p/s "
            f"({result.stats.containment_checks:,} containment checks, "
            f"{100 * result.stats.acceptance_rate:.0f}% accepted)"
        )
    write_artifact(out_dir, "fuzz_throughput.txt", "\n".join(lines))
