"""Precision-campaign throughput benchmarks.

The campaign layer must not tax the fuzzing loop: telemetry (the
``on_transfer`` hook plus concrete range tracking) rides along with the
containment checks the plain driver already performs, so campaign
throughput is required to stay within 10% of baseline fuzz throughput.
Seed shrinking and mutation are bounded per *round*, not per program,
and are reported separately — they buy coverage concentration, not raw
speed.
"""

from __future__ import annotations

import random
import time

from repro.fuzz import (
    CampaignConfig,
    CampaignSpec,
    DifferentialOracle,
    generate_program,
    mutate_program,
    run_campaign,
    run_precision_campaign,
)
from repro.fuzz.campaign import TransferCollector

from .conftest import write_artifact

BUDGET = 300


def _best_seconds(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _telemetry_spec(**overrides) -> CampaignSpec:
    """Campaign telemetry alone: no mutation, no seed admission."""
    defaults = dict(
        budget=BUDGET, rounds=1, seed=42, mutate_fraction=0.0,
        seeds_per_round=0, seed_shrink_per_round=0,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def test_telemetry_oracle_single_program(benchmark):
    gp = generate_program(7)
    collector = TransferCollector()
    oracle = DifferentialOracle(
        inputs_per_program=8, on_transfer=collector.record,
        collect_ranges=True,
    )
    report = benchmark(oracle.check_program, gp.program, 7)
    assert report.ok


def test_mutation_throughput(benchmark):
    rng = random.Random(0)
    base = generate_program(1).program
    donor = generate_program(2).program

    mutant = benchmark(mutate_program, base, donor, rng)
    assert mutant.insns[-1].is_exit()


def test_campaign_end_to_end(benchmark):
    def campaign():
        return run_precision_campaign(
            _telemetry_spec(budget=50, seed=42)
        )

    result = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert result.ok


def test_campaign_throughput_vs_baseline(out_dir):
    """Acceptance: telemetry keeps >= 90% of baseline fuzz throughput."""
    baseline_s = _best_seconds(
        lambda: run_campaign(CampaignConfig(budget=BUDGET, seed=42))
    )
    telemetry_s = _best_seconds(
        lambda: run_precision_campaign(_telemetry_spec())
    )
    feedback_s = _best_seconds(
        lambda: run_precision_campaign(
            CampaignSpec(budget=BUDGET, rounds=2, seed=42)
        )
    )
    baseline_ps = BUDGET / baseline_s
    telemetry_ps = BUDGET / telemetry_s
    feedback_ps = BUDGET / feedback_s
    ratio = telemetry_ps / baseline_ps

    lines = [
        f"Campaign throughput vs baseline (budget {BUDGET}, seed 42):",
        f"  baseline driver    : {baseline_ps:7.1f} programs/sec",
        f"  campaign telemetry : {telemetry_ps:7.1f} programs/sec "
        f"({100 * ratio:.1f}% of baseline)",
        f"  + mutation feedback: {feedback_ps:7.1f} programs/sec "
        f"(2 rounds, shrinking enabled)",
    ]
    write_artifact(out_dir, "campaign_throughput.txt", "\n".join(lines))
    assert ratio >= 0.9, (
        f"campaign telemetry dropped throughput to {100 * ratio:.1f}% "
        "of the plain driver (>10% regression)"
    )
