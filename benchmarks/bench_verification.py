"""§III-A: bounded verification campaign timings.

Paper setup: Z3 on 64-bit encodings — every operator except kern_mul
verifies "in just a few seconds"; kern_mul succeeds at 8 bits but does
not finish at 16 bits within 24 hours.

Here: our CDCL SAT pipeline at laptop widths.  The qualitative shape to
reproduce is *linear operators verify comfortably at large-ish widths
while multiplication blows up* — which these benchmarks time directly.
Results: ``benchmarks/out/verification.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.verify.exhaustive import verify_all_operators
from repro.verify.random_check import random_check_all
from repro.verify.sat import check_operator_soundness

from .conftest import write_artifact


@pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor"])
def test_sat_linear_ops_width16(benchmark, op):
    report = benchmark.pedantic(
        check_operator_soundness, args=(op, 16), rounds=1, iterations=1
    )
    assert report.sound


@pytest.mark.parametrize("op", ["lsh", "rsh", "arsh"])
def test_sat_shifts_width8(benchmark, op):
    report = benchmark.pedantic(
        check_operator_soundness, args=(op, 8), rounds=1, iterations=1
    )
    assert report.sound


@pytest.mark.parametrize("op", ["mul", "kern_mul", "bitwise_mul"])
def test_sat_multiplications_width4(benchmark, op):
    report = benchmark.pedantic(
        check_operator_soundness, args=(op, 4), rounds=1, iterations=1
    )
    assert report.sound


def test_sat_our_mul_width6(benchmark):
    report = benchmark.pedantic(
        check_operator_soundness, args=("mul", 6), rounds=1, iterations=1
    )
    assert report.sound


def test_exhaustive_all_ops_width3(benchmark):
    reports = benchmark.pedantic(
        verify_all_operators, args=(3,), rounds=1, iterations=1
    )
    assert all(r.holds for r in reports.values())


def test_random_64bit_sweep(benchmark):
    reports = benchmark.pedantic(
        random_check_all, kwargs={"trials": 500, "seed": 0},
        rounds=1, iterations=1,
    )
    assert all(r.passed for r in reports.values())


def test_verification_campaign_summary(benchmark, out_dir):
    """Render the §III-A table: operator × width × time × verdict."""
    rows = []

    def noop():
        return None

    benchmark.pedantic(noop, rounds=1, iterations=1)
    campaign = [
        ("add", 8), ("add", 16), ("add", 32),
        ("sub", 8), ("sub", 16),
        ("and", 16), ("or", 16), ("xor", 16),
        ("lsh", 8), ("rsh", 8), ("arsh", 8),
        ("mul", 4), ("mul", 5), ("mul", 6),
        ("kern_mul", 4), ("bitwise_mul", 4),
    ]
    for op, width in campaign:
        t0 = time.perf_counter()
        report = check_operator_soundness(op, width)
        elapsed = time.perf_counter() - t0
        verdict = "SOUND" if report.sound else "UNSOUND"
        rows.append(
            f"{op:>12} @ {width:>2} bits: {verdict}  "
            f"({elapsed:6.2f}s, {report.num_vars} vars, "
            f"{report.num_clauses} clauses)"
        )
        assert report.sound
    header = (
        "Bounded verification campaign (paper §III-A; Z3 replaced by the\n"
        "in-repo CDCL solver — linear ops scale, multiplication does not):\n"
    )
    write_artifact(out_dir, "verification.txt", header + "\n".join(rows))
