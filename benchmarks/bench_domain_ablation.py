"""Ablation: reduced product (tnum × interval) vs each domain alone.

DESIGN.md §6 calls this out.  Over random expression DAGs built from the
operator mix BPF scalar code exhibits, measure the mean log2 cardinality
of the resulting abstract value under the tnum domain, the interval
domain, and their reduced product.  Lower = more precise.

The headline shape to establish: the product is never worse than either
component; bitwise-heavy expressions are where the tnum (the paper's
domain) carries the verifier, and ranges alone are hopeless there.
"""

from __future__ import annotations


from repro.eval.domain_ablation import ablation_study

from .conftest import write_artifact


def test_domain_ablation(benchmark, out_dir):
    result = benchmark.pedantic(
        ablation_study, kwargs={"count": 400, "seed": 0}, rounds=1, iterations=1
    )
    assert result.unsound == 0

    n = result.expressions
    lines = [
        "Domain-precision ablation over random expression DAGs",
        f"  expressions evaluated: {n}",
        "",
        "  mean log2 |gamma| (lower = more precise):",
    ]
    for name in ("tnum", "interval", "product"):
        lines.append(f"    {name:<10} {result.mean_log2[name]:6.2f} bits")
    lines += [
        "",
        f"  tnum more precise than interval: {result.tnum_vs_interval_wins}",
        f"  interval more precise than tnum: {result.interval_vs_tnum_wins}",
        f"  product strictly beats tnum:     {result.product_vs_tnum_wins}",
        f"  product strictly beats interval: {result.product_vs_interval_wins}",
    ]
    write_artifact(out_dir, "domain_ablation.txt", "\n".join(lines))

    assert result.mean_log2["product"] <= result.mean_log2["tnum"]
    assert result.mean_log2["product"] <= result.mean_log2["interval"]
    assert result.product_vs_tnum_wins > 0
