"""Verifier-throughput benchmarks (speed requirement, §I).

The paper's third requirement for the analyzer is *speed*: program load
time must stay small.  These benchmarks time the miniature verifier on
progressively larger synthetic programs, plus the concrete interpreter
for scale, and record instructions-per-second.
"""

from __future__ import annotations

import random

import pytest

from repro.bpf import Machine, assemble
from repro.bpf.verifier import PathSensitiveVerifier, Verifier

from .conftest import write_artifact


def straightline_program(n_insns: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    lines = ["ldxdw r2, [r1+0]", "ldxdw r3, [r1+8]", "mov r4, 99"]
    ops = ["add", "sub", "and", "or", "xor", "mul"]
    for _ in range(n_insns):
        lines.append(f"{rng.choice(ops)} r{rng.choice([2, 3, 4])}, "
                     f"r{rng.choice([2, 3, 4])}")
    lines += ["mov r0, r2", "exit"]
    return "\n".join(lines)


def branchy_program(n_branches: int) -> str:
    lines = ["ldxdw r2, [r1+0]", "mov r0, 0"]
    for i in range(n_branches):
        lines += [
            f"jeq r2, {i}, skip{i}",
            "add r0, 1",
            f"skip{i}:",
            "and r0, 0xffff",
        ]
    lines.append("exit")
    return "\n".join(lines)


@pytest.mark.parametrize("size", [50, 200, 800])
def test_verify_straightline(benchmark, size):
    program = assemble(straightline_program(size))
    verifier = Verifier(ctx_size=64)
    result = benchmark(verifier.verify, program)
    assert result.ok


@pytest.mark.parametrize("branches", [8, 32, 128])
def test_verify_branchy(benchmark, branches):
    program = assemble(branchy_program(branches))
    verifier = Verifier(ctx_size=64)
    result = benchmark(verifier.verify, program)
    assert result.ok


@pytest.mark.parametrize("size", [200])
def test_verify_reference_straightline(benchmark, size):
    # The retained decode-every-visit walk: the compiled engine's
    # before/after partner (same program as test_verify_straightline).
    program = assemble(straightline_program(size))
    verifier = Verifier(ctx_size=64)
    result = benchmark(verifier.verify_reference, program)
    assert result.ok


@pytest.mark.parametrize("branches", [32])
def test_verify_reference_branchy(benchmark, branches):
    program = assemble(branchy_program(branches))
    verifier = Verifier(ctx_size=64)
    result = benchmark(verifier.verify_reference, program)
    assert result.ok


def test_verify_cold_compile(benchmark):
    # Worst case for the compile-once design: a fresh Program each call
    # (container + CFG + closure-cache lookups all inside the timer).
    from repro.bpf.program import Program

    insns = list(assemble(straightline_program(200)).insns)
    verifier = Verifier(ctx_size=64)

    def run():
        return verifier.verify(Program(insns))

    result = benchmark(run)
    assert result.ok


def test_interpret_straightline(benchmark):
    program = assemble(straightline_program(500))
    machine = Machine(ctx=bytes(64))

    result = benchmark(machine.run, program)
    assert result.steps == len(program)


@pytest.mark.parametrize("branches", [8, 32])
def test_verify_branchy_path_sensitive(benchmark, branches):
    # The kernel-style DFS engine on the same diamonds; state pruning is
    # what keeps this comparable to the join engine instead of 2^n.
    program = assemble(branchy_program(branches))
    verifier = PathSensitiveVerifier(ctx_size=64)
    result = benchmark(verifier.verify, program)
    assert result.ok


def test_obs_disabled_is_zero_overhead(benchmark):
    """Instrumented-disabled overhead must stay under 2%.

    Two layers of proof.  The structural one is exact: with obs disabled
    the compiled verifier contains the *same closure objects* (from the
    shared step/branch caches) as a build that has never seen obs — the
    disabled path is byte-for-byte the uninstrumented code, so there is
    no overhead to measure.  The timing layer then compares a verify
    pass before and after an enable/disable cycle, which would catch a
    regression where toggling obs leaves shims or stale caches behind;
    2% is the contract, with a best-of-several measurement to keep the
    check meaningful on shared CI machines.
    """
    import time

    from repro import obs
    from repro.bpf.program import Program

    obs.reset()
    insns = list(assemble(straightline_program(400)).insns)

    def flat_steps(compiled):
        return [step for block in compiled.blocks for step in block.steps]

    pristine = Program(insns).compiled_verifier(64)
    obs.enable()
    instrumented = Program(insns).compiled_verifier(64)
    obs.reset()
    disabled_again = Program(insns).compiled_verifier(64)

    # Exact zero-overhead proof: closure identity through the caches.
    assert all(
        a is b
        for a, b in zip(flat_steps(pristine), flat_steps(disabled_again))
    )
    # ... while enabling really did wrap every step in a timing shim.
    assert all(
        a is not b
        for a, b in zip(flat_steps(pristine), flat_steps(instrumented))
    )

    def best_verify_s(repeats: int = 5) -> float:
        verifier = Verifier(ctx_size=64)
        best = None
        for _ in range(repeats):
            program = Program(insns)
            t0 = time.perf_counter()
            assert verifier.verify(program).ok
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        return best

    before = best_verify_s()
    obs.enable()
    Program(insns).compiled_verifier(64)   # exercise the instrumented path
    obs.reset()
    after = best_verify_s()
    assert after <= before * 1.02, (
        f"obs-disabled verify regressed {100 * (after / before - 1):.1f}% "
        f"after an enable/disable cycle (limit 2%)"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_verifier_throughput_summary(benchmark, out_dir):
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Verifier throughput (instructions analyzed per second):"]
    for size in (100, 400, 1600):
        program = assemble(straightline_program(size))
        verifier = Verifier(ctx_size=64)
        t0 = time.perf_counter()
        result = verifier.verify(program)
        elapsed = time.perf_counter() - t0
        assert result.ok
        lines.append(
            f"  {len(program):>5} insns: {elapsed * 1e3:7.2f} ms "
            f"({result.insns_processed / elapsed:,.0f} insn/s)"
        )
    write_artifact(out_dir, "verifier_throughput.txt", "\n".join(lines))
