"""Benchmark suite package (needed so ``from .conftest import ...`` in
the bench modules resolves when invoking ``pytest benchmarks/...``)."""
