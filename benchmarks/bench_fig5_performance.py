"""Figure 5: performance CDF of the three multiplication algorithms.

Paper setup: 40M random 64-bit tnum pairs, RDTSC cycles, min of 10 trials;
headline means 393 (kern) / 387 (bitwise, optimized) / 262 (our) cycles —
our_mul 33% and 32% faster respectively.

Here: ``perf_counter_ns`` over ``REPRO_FIG5_PAIRS`` pairs (default 2000).
The pytest-benchmark entries time each algorithm over a fixed batch; the
rendered CDF and speedup summary land in ``benchmarks/out/fig5.txt``.
"""

from __future__ import annotations

import pytest

from repro.baselines import bitwise_mul_naive, bitwise_mul_opt, kern_mul
from repro.core.multiply import our_mul
from repro.eval.performance import generate_pairs, speedup_summary, time_algorithms
from repro.eval.report import render_fig5

from .conftest import env_int, write_artifact

N_PAIRS = env_int("REPRO_FIG5_PAIRS", 2000)


@pytest.fixture(scope="module")
def pairs():
    return generate_pairs(N_PAIRS, width=64, seed=0)


@pytest.fixture(scope="module")
def small_batch():
    return generate_pairs(200, width=64, seed=1)


def _run_batch(fn, batch):
    for p, q in batch:
        fn(p, q)


def test_fig5_kern_mul(benchmark, small_batch):
    benchmark(_run_batch, kern_mul, small_batch)


def test_fig5_bitwise_mul_optimized(benchmark, small_batch):
    benchmark(_run_batch, bitwise_mul_opt, small_batch)


def test_fig5_bitwise_mul_naive(benchmark, small_batch):
    # The paper quotes the unoptimized version at ~4921 cycles (12.7x the
    # optimized 387); expect a similar blow-up factor here.
    benchmark(_run_batch, bitwise_mul_naive, small_batch)


def test_fig5_our_mul(benchmark, small_batch):
    benchmark(_run_batch, our_mul, small_batch)


def test_fig5_render_cdf_and_speedups(benchmark, pairs, out_dir):
    """Regenerates the full Figure 5 artifact (CDF + mean table)."""

    def run():
        return time_algorithms(pairs, trials=3, include_naive=False)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = speedup_summary(results)
    lines = [render_fig5(results), ""]
    lines.append("Speedup of our_mul (paper: 33% vs kern_mul, 32% vs bitwise_mul):")
    for name, frac in speedups.items():
        lines.append(f"  vs {name}: {100 * frac:.1f}% faster")
    write_artifact(out_dir, "fig5.txt", "\n".join(lines))
    # Reproduction target: our_mul strictly fastest on average.
    assert results["our_mul"].mean_ns < results["kern_mul"].mean_ns
    assert results["our_mul"].mean_ns < results["bitwise_mul"].mean_ns
