"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **O(1) machine arithmetic vs O(n) ripple-carry** — the kernel's add
   against the Regehr–Duongsaa-style ripple adder (§II: "much slower").
2. **Strength reduction (Lemma 11)** — ``our_mul`` vs
   ``our_mul_simplified``: identical output, the former skips the
   fixed-count loop and the per-iteration ACC_V adds.
3. **Machine-arithmetic rewrite of bitwise_mul** — the paper reports the
   naive per-bit µ-kill loop costs 4921 cycles vs 387 optimized (~12.7×).
4. **Addition-count asymmetry** — our_mul's n+1 adds vs kern_mul's 2n,
   measured as wall-clock on the worst-case operand shapes.
"""

from __future__ import annotations


from repro.baselines import (
    bitwise_mul_naive,
    bitwise_mul_opt,
    ripple_add,
    ripple_sub,
)
from repro.core.arithmetic import tnum_add, tnum_sub
from repro.core.multiply import our_mul, our_mul_simplified
from repro.core.tnum import Tnum
from repro.eval.performance import generate_pairs

from .conftest import write_artifact

PAIRS = generate_pairs(300, width=64, seed=7)


def _run(fn, pairs=PAIRS):
    for p, q in pairs:
        fn(p, q)


# -- ablation 1: O(1) vs O(n) addition -----------------------------------------

def test_add_kernel_o1(benchmark):
    benchmark(_run, tnum_add)


def test_add_ripple_on(benchmark):
    benchmark(_run, ripple_add)


def test_sub_kernel_o1(benchmark):
    benchmark(_run, tnum_sub)


def test_sub_ripple_on(benchmark):
    benchmark(_run, ripple_sub)


# -- ablation 2: strength reduction (Lemma 11) ------------------------------------

def test_mul_ours_final(benchmark):
    benchmark(_run, our_mul)


def test_mul_ours_simplified(benchmark):
    benchmark(_run, our_mul_simplified)


def test_strength_reduction_preserves_output(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for p, q in PAIRS[:100]:
        assert our_mul(p, q) == our_mul_simplified(p, q)


# -- ablation 3: naive vs optimized bitwise_mul --------------------------------------

def test_bitwise_mul_naive(benchmark):
    benchmark(_run, bitwise_mul_naive, PAIRS[:50])


def test_bitwise_mul_optimized(benchmark):
    benchmark(_run, bitwise_mul_opt, PAIRS[:50])


# -- ablation 4: addition counts -----------------------------------------------------

def test_addition_count_summary(benchmark, out_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import repro.baselines.kernel_mul as kern_mod
    import repro.core.multiply as mul_mod
    from repro.core._raw import add_raw as real_add

    counts = {}

    shapes = {
        "all known-1 x all unknown": (
            Tnum.const((1 << 64) - 1, 64), Tnum.unknown(64)
        ),
        "all unknown x all unknown": (Tnum.unknown(64), Tnum.unknown(64)),
        "half unknown": (
            Tnum(0, 0xFFFF_FFFF, 64), Tnum(0xFFFF_FFFF_0000_0000, 0, 64)
        ),
    }
    lines = ["tnum_add invocations per multiply (paper: our n+1 vs kern 2n):"]
    for label, (p, q) in shapes.items():
        for name, mod, fn_name in (
            ("our_mul", mul_mod, "our_mul"),
            ("kern_mul", kern_mod, "kern_mul"),
        ):
            calls = [0]

            def counting(*args, calls=calls):
                calls[0] += 1
                return real_add(*args)

            original = mod.add_raw
            mod.add_raw = counting
            try:
                getattr(mod, fn_name)(p, q)
            finally:
                mod.add_raw = original
            counts[(label, name)] = calls[0]
        lines.append(
            f"  {label:<28} our_mul={counts[(label, 'our_mul')]:>3}  "
            f"kern_mul={counts[(label, 'kern_mul')]:>3}"
        )
    write_artifact(out_dir, "ablation_add_counts.txt", "\n".join(lines))
    assert counts[("all known-1 x all unknown", "our_mul")] <= 65
    assert counts[("all known-1 x all unknown", "kern_mul")] == 128
